// Package profcache memoizes retention-profile and restore-model
// construction. Every experiment cell in internal/exp starts from the same
// handful of (distribution, seed, geometry) profiles and (params, geometry)
// restore models, and before this cache each cell rebuilt them from scratch -
// a Monte Carlo sample over 65k+ rows per profile. The cache builds each
// distinct input once and hands out shared read-only views; profile consumers
// that need to mutate (clamping, temperature excursions, row upgrades)
// already copy-on-write, so sharing is safe under the parallel sweep engine.
//
// Two scopes exist. The package-level functions use one process-wide default
// cache - the right scope for a one-shot CLI run, where every experiment
// shares one seed universe. Long-lived processes that serve many independent
// clients (internal/serve) own Cache instances instead, so each service can
// bound its memory with Flush and no session's profile population leaks into
// a global that outlives it.
package profcache

import (
	"vrldram/internal/core"
	"vrldram/internal/device"
	"vrldram/internal/memo"
	"vrldram/internal/retention"
)

// profileKey identifies a sampled bank profile. CellDistribution,
// BankGeometry, and the seed are all flat comparable structs/scalars, so the
// key compares by value.
type profileKey struct {
	geom  device.BankGeometry
	dist  retention.CellDistribution
	seed  int64
	paper bool // NewPaperProfile vs NewSampledProfile (paper applies its own geometry)
}

// modelKey identifies a restore model. partialCycles < 0 marks the paper
// default model (PaperRestoreModel) as distinct from any explicit cycle
// count.
type modelKey struct {
	params        device.Params
	geom          device.BankGeometry
	partialCycles int
}

// Cache is one memoization scope for profiles and restore models. The zero
// value is ready to use; all methods are safe for concurrent use.
type Cache struct {
	profiles memo.Map[profileKey, *retention.BankProfile]
	models   memo.Map[modelKey, core.RestoreModel]
}

// defaultCache backs the package-level functions.
var defaultCache Cache

// PaperProfile returns the memoized retention.NewPaperProfile(dist, seed).
// The returned profile is shared and READ-ONLY: use its copy-on-write
// helpers (AtTemperature, UpgradeRows, ...) rather than mutating fields.
func (c *Cache) PaperProfile(dist retention.CellDistribution, seed int64) (*retention.BankProfile, error) {
	return c.profiles.Get(profileKey{geom: device.PaperBank, dist: dist, seed: seed, paper: true},
		func() (*retention.BankProfile, error) {
			return retention.NewPaperProfile(dist, seed)
		})
}

// SampledProfile returns the memoized retention.NewSampledProfile(geom,
// dist, seed), shared and READ-ONLY as for PaperProfile.
func (c *Cache) SampledProfile(geom device.BankGeometry, dist retention.CellDistribution, seed int64) (*retention.BankProfile, error) {
	return c.profiles.Get(profileKey{geom: geom, dist: dist, seed: seed},
		func() (*retention.BankProfile, error) {
			return retention.NewSampledProfile(geom, dist, seed)
		})
}

// Profile returns the paper profile for the paper bank geometry and a
// sampled profile for any other, mirroring how the facade and the service
// construct banks.
func (c *Cache) Profile(geom device.BankGeometry, dist retention.CellDistribution, seed int64) (*retention.BankProfile, error) {
	if geom == device.PaperBank {
		return c.PaperProfile(dist, seed)
	}
	return c.SampledProfile(geom, dist, seed)
}

// PaperRestoreModel returns the memoized core.PaperRestoreModel(p, geom).
// RestoreModel is a value type, so callers get an independent copy.
func (c *Cache) PaperRestoreModel(p device.Params, geom device.BankGeometry) (core.RestoreModel, error) {
	return c.models.Get(modelKey{params: p, geom: geom, partialCycles: -1},
		func() (core.RestoreModel, error) {
			return core.PaperRestoreModel(p, geom)
		})
}

// RestoreModelFor returns the memoized core.RestoreModelFor(p, geom,
// partialCycles). partialCycles must be >= 0 (negative values are reserved
// for the paper default); invalid values are passed through so the
// underlying constructor reports the error.
func (c *Cache) RestoreModelFor(p device.Params, geom device.BankGeometry, partialCycles int) (core.RestoreModel, error) {
	if partialCycles < 0 {
		return core.RestoreModelFor(p, geom, partialCycles)
	}
	return c.models.Get(modelKey{params: p, geom: geom, partialCycles: partialCycles},
		func() (core.RestoreModel, error) {
			return core.RestoreModelFor(p, geom, partialCycles)
		})
}

// Len reports the number of cached profiles plus restore models.
func (c *Cache) Len() int { return c.profiles.Len() + c.models.Len() }

// Flush drops all cached profiles and restore models.
func (c *Cache) Flush() {
	c.profiles.Flush()
	c.models.Flush()
}

// PaperProfile is Cache.PaperProfile on the process-wide default cache.
func PaperProfile(dist retention.CellDistribution, seed int64) (*retention.BankProfile, error) {
	return defaultCache.PaperProfile(dist, seed)
}

// SampledProfile is Cache.SampledProfile on the process-wide default cache.
func SampledProfile(geom device.BankGeometry, dist retention.CellDistribution, seed int64) (*retention.BankProfile, error) {
	return defaultCache.SampledProfile(geom, dist, seed)
}

// PaperRestoreModel is Cache.PaperRestoreModel on the process-wide default
// cache.
func PaperRestoreModel(p device.Params, geom device.BankGeometry) (core.RestoreModel, error) {
	return defaultCache.PaperRestoreModel(p, geom)
}

// RestoreModelFor is Cache.RestoreModelFor on the process-wide default cache.
func RestoreModelFor(p device.Params, geom device.BankGeometry, partialCycles int) (core.RestoreModel, error) {
	return defaultCache.RestoreModelFor(p, geom, partialCycles)
}

// Len reports the default cache's entry count.
func Len() int { return defaultCache.Len() }

// Flush drops every entry of the default cache.
func Flush() { defaultCache.Flush() }
