package retention

import (
	"fmt"
	"math"
)

// VRT models variable retention time (the phenomenon AVATAR, which the
// paper cites, exists to handle): some rows toggle between a high-retention
// and a low-retention state as a metastable defect in one of their cells
// charges and discharges. A retention profile measured while a row was in
// its high state overestimates what the row does in its low state, which is
// what breaks purely static retention-aware refresh.
//
// The model is a deterministic random-telegraph process: a hash of the row
// index decides whether the row is VRT-prone, its dwell time, and its phase,
// so simulations are reproducible without storing per-row state.
type VRT struct {
	// AffectedFrac is the fraction of eligible rows that are VRT-prone.
	AffectedFrac float64
	// LowFactor multiplies the row's retention while in the low state.
	LowFactor float64
	// MeanDwell is the nominal time spent in each state (s); per-row dwell
	// varies deterministically around it.
	MeanDwell float64
	// MinRetention excludes rows whose retention is already defect-limited
	// (the weak tail): VRT modulates the dominant junction leakage of
	// otherwise-strong cells. Rows with true retention below this are not
	// modulated (s).
	MinRetention float64
	// Seed decorrelates the row hash across experiments.
	Seed int64
}

// DefaultVRT returns parameters in the range the VRT literature reports
// (AVATAR and the retention studies it cites): ~1% of rows affected, a low
// state that costs an order of magnitude of retention, dwell times of
// hundreds of milliseconds to seconds.
func DefaultVRT() VRT {
	return VRT{
		AffectedFrac: 0.01,
		LowFactor:    0.10,
		MeanDwell:    0.40,
		MinRetention: 0.30,
		Seed:         1,
	}
}

// Validate reports the first unusable parameter.
func (v VRT) Validate() error {
	switch {
	case v.AffectedFrac < 0 || v.AffectedFrac > 1:
		return fmt.Errorf("retention: VRT AffectedFrac %g outside [0,1]", v.AffectedFrac)
	case v.LowFactor <= 0 || v.LowFactor >= 1:
		return fmt.Errorf("retention: VRT LowFactor %g outside (0,1)", v.LowFactor)
	case v.MeanDwell <= 0:
		return fmt.Errorf("retention: VRT MeanDwell %g must be positive", v.MeanDwell)
	case v.MinRetention < 0:
		return fmt.Errorf("retention: VRT MinRetention %g must be non-negative", v.MinRetention)
	}
	return nil
}

// hash64 is a splitmix64-style row hash.
func (v VRT) hash64(row int, salt uint64) uint64 {
	x := uint64(row)*0x9E3779B97F4A7C15 + uint64(v.Seed)*0xBF58476D1CE4E5B9 + salt
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

func (v VRT) unit(row int, salt uint64) float64 {
	return float64(v.hash64(row, salt)>>11) / float64(1<<53)
}

// Affected reports whether the row with the given true retention is
// VRT-prone under this model.
func (v VRT) Affected(row int, tret float64) bool {
	if tret < v.MinRetention {
		return false
	}
	return v.unit(row, 0xA11CE) < v.AffectedFrac
}

// dwell returns the row's state dwell time (0.75x to 1.25x the mean).
func (v VRT) dwell(row int) float64 {
	return v.MeanDwell * (0.75 + 0.5*v.unit(row, 0xD3E11))
}

// StateFactor returns the retention multiplier of the row at time t: 1 in
// the high state, LowFactor in the low state. Unaffected rows always return
// 1.
func (v VRT) StateFactor(row int, tret, t float64) float64 {
	if !v.Affected(row, tret) {
		return 1
	}
	d := v.dwell(row)
	phase := v.unit(row, 0x0FF5E7) * 2 * d
	k := int64(math.Floor((t + phase) / d))
	if k&1 == 1 {
		return v.LowFactor
	}
	return 1
}

// NextToggle returns the first instant strictly after t at which the row's
// telegraph state may change, or +Inf for rows the process does not affect.
// It uses exactly the boundary arithmetic of DecayFactor's segment loop
// (including the epsilon guard), so an external integrator segmenting at
// NextToggle boundaries and scaling by StateFactor reproduces DecayFactor
// bit for bit - the contract the scenario layer's VRT stressor relies on.
func (v VRT) NextToggle(row int, tret, t float64) float64 {
	if !v.Affected(row, tret) {
		return math.Inf(1)
	}
	d := v.dwell(row)
	phase := v.unit(row, 0x0FF5E7) * 2 * d
	k := math.Floor((t + phase) / d)
	next := (k+1)*d - phase
	if next <= t {
		next = t + 1e-9*d
	}
	return next
}

// DecayFactor integrates the decay of a row with base retention tret over
// [t0, t1], honoring the telegraph state at each instant. For the
// exponential law this is exact: the exponents of the piecewise segments
// add. For other laws the per-segment factors multiply, which is exact at
// segment boundaries and conservative in between.
func (v VRT) DecayFactor(row int, tret, t0, t1 float64, base DecayModel) float64 {
	if t1 <= t0 {
		return 1
	}
	if !v.Affected(row, tret) {
		return base.Factor(t1-t0, tret)
	}
	d := v.dwell(row)
	phase := v.unit(row, 0x0FF5E7) * 2 * d
	factor := 1.0
	t := t0
	for t < t1 {
		// Next toggle boundary after t; the epsilon guard keeps the loop
		// advancing when t lands exactly on a boundary at floating-point
		// precision.
		k := math.Floor((t + phase) / d)
		next := (k+1)*d - phase
		if next <= t {
			next = t + 1e-9*d
		}
		if next > t1 {
			next = t1
		}
		state := 1.0
		if int64(k)&1 == 1 {
			state = v.LowFactor
		}
		factor *= base.Factor(next-t, tret*state)
		t = next
	}
	return factor
}
