package retention

import (
	"fmt"
	"sort"
)

// RAIDRBins are the refresh periods (seconds) the paper bins rows into
// (Figure 3b): a row is refreshed at the largest bin period that does not
// exceed its (profiled, derated) retention time.
var RAIDRBins = []float64{0.064, 0.128, 0.192, 0.256}

// BinPeriod returns the refresh period for a row with the given profiled
// retention time: the largest bin not exceeding it. Rows weaker than the
// smallest bin are unusable at any supported refresh rate; BinPeriod
// returns an error for them (a real chip would remap such rows).
func BinPeriod(tret float64, bins []float64) (float64, error) {
	if len(bins) == 0 {
		return 0, fmt.Errorf("retention: no bins")
	}
	if tret < bins[0] {
		return 0, fmt.Errorf("retention: row retention %.4gs below the minimum bin %.4gs", tret, bins[0])
	}
	best := bins[0]
	for _, b := range bins[1:] {
		if b <= tret {
			best = b
		}
	}
	return best, nil
}

// BinCounts returns, for each bin period, how many rows of the profile land
// in it - the paper's Figure 3b table.
func BinCounts(rowRetention []float64, bins []float64) (map[float64]int, error) {
	counts := make(map[float64]int, len(bins))
	for _, b := range bins {
		counts[b] = 0
	}
	for r, t := range rowRetention {
		p, err := BinPeriod(t, bins)
		if err != nil {
			return nil, fmt.Errorf("row %d: %w", r, err)
		}
		counts[p]++
	}
	return counts, nil
}

// SortedBins returns the bins in increasing period order (a copy).
func SortedBins(bins []float64) []float64 {
	out := append([]float64(nil), bins...)
	sort.Float64s(out)
	return out
}

// PaperBinCounts are the Figure 3b row counts for an 8192-row bank, in
// RAIDRBins order: 68 rows at 64 ms, 101 at 128 ms, 145 at 192 ms and 7878
// at 256 ms.
var PaperBinCounts = []int{68, 101, 145, 7878}
