package retention

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"vrldram/internal/device"
)

func TestPatternNamesAndFactors(t *testing.T) {
	for _, p := range Patterns {
		f := PatternFactor(p)
		if f <= 0 || f > 1 {
			t.Errorf("%s: factor %v outside (0,1]", p, f)
		}
		if p.String() == "" {
			t.Errorf("pattern %d has no name", p)
		}
	}
	if PatternFactor(PatternAllZeros) != 1 {
		t.Fatal("all-zeros must be the benign reference pattern")
	}
	if w := WorstPatternFactor(); w != PatternFactor(PatternAlternating) {
		t.Fatalf("worst pattern factor %v, want the alternating pattern's", w)
	}
	if Pattern(99).String() == "" {
		t.Fatal("unknown pattern must still stringify")
	}
}

func TestDistributionValidate(t *testing.T) {
	if err := DefaultCellDistribution().Validate(); err != nil {
		t.Fatalf("default distribution invalid: %v", err)
	}
	bad := []func(*CellDistribution){
		func(d *CellDistribution) { d.BulkMedian = 0 },
		func(d *CellDistribution) { d.BulkSigma = -1 },
		func(d *CellDistribution) { d.BulkFloor = 0 },
		func(d *CellDistribution) { d.WeakProb = 2 },
		func(d *CellDistribution) { d.WeakMin = 0 },
		func(d *CellDistribution) { d.WeakMax = d.WeakMin },
		func(d *CellDistribution) { d.WeakShape = 0 },
		func(d *CellDistribution) { d.Max = 0.001 },
	}
	for i, mut := range bad {
		d := DefaultCellDistribution()
		mut(&d)
		if err := d.Validate(); err == nil {
			t.Errorf("mutation %d not caught", i)
		}
	}
}

func TestSampleCellRange(t *testing.T) {
	d := DefaultCellDistribution()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 20000; i++ {
		v := d.SampleCell(rng)
		if v < d.WeakMin || v > d.Max {
			t.Fatalf("sample %v outside [%v,%v]", v, d.WeakMin, d.Max)
		}
	}
}

func TestSampleRowIsWeakest(t *testing.T) {
	// Statistically, a row of many cells must be weaker than a single cell.
	d := DefaultCellDistribution()
	rng := rand.New(rand.NewSource(2))
	var sumCell, sumRow float64
	const n = 3000
	for i := 0; i < n; i++ {
		sumCell += d.SampleCell(rng)
		sumRow += d.SampleRow(rng, 32)
	}
	if sumRow >= sumCell {
		t.Fatalf("mean row retention %v not below mean cell retention %v", sumRow/n, sumCell/n)
	}
	if d.SampleRow(rng, 0) <= 0 {
		t.Fatal("degenerate cols must still sample")
	}
}

func TestWeakCellFractionCalibration(t *testing.T) {
	// The weak tail drives Figure 3b: P(cell < 256ms) must be ~1.2e-3 so an
	// 8192x32 bank lands ~314 rows below the 256 ms bin.
	d := DefaultCellDistribution()
	rng := rand.New(rand.NewSource(3))
	const n = 2_000_000
	below := 0
	for i := 0; i < n; i++ {
		if d.SampleCell(rng) < 0.256 {
			below++
		}
	}
	frac := float64(below) / n
	if frac < 0.8e-3 || frac > 1.6e-3 {
		t.Fatalf("P(cell < 256ms) = %v, calibration wants ~1.2e-3", frac)
	}
}

func TestHistogram(t *testing.T) {
	counts, centers, err := Histogram([]float64{0.1, 0.1, 0.9, 2.0, -5}, 0, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if counts[0] != 3 || counts[1] != 2 {
		t.Fatalf("counts = %v", counts)
	}
	if centers[0] != 0.25 || centers[1] != 0.75 {
		t.Fatalf("centers = %v", centers)
	}
	if _, _, err := Histogram(nil, 1, 0, 2); err == nil {
		t.Fatal("bad range must be rejected")
	}
	if _, _, err := Histogram(nil, 0, 1, 0); err == nil {
		t.Fatal("zero bins must be rejected")
	}
}

func TestBinPeriod(t *testing.T) {
	cases := []struct {
		tret float64
		want float64
	}{
		{0.064, 0.064},
		{0.100, 0.064},
		{0.128, 0.128},
		{0.191, 0.128},
		{0.192, 0.192},
		{0.256, 0.256},
		{3.0, 0.256},
	}
	for _, c := range cases {
		got, err := BinPeriod(c.tret, RAIDRBins)
		if err != nil {
			t.Fatalf("BinPeriod(%v): %v", c.tret, err)
		}
		if got != c.want {
			t.Errorf("BinPeriod(%v) = %v, want %v", c.tret, got, c.want)
		}
	}
	if _, err := BinPeriod(0.01, RAIDRBins); err == nil {
		t.Fatal("retention below the smallest bin must error")
	}
	if _, err := BinPeriod(1, nil); err == nil {
		t.Fatal("empty bins must error")
	}
}

// Property: the assigned period never exceeds the retention time - the
// binning safety invariant.
func TestBinPeriodSafety(t *testing.T) {
	f := func(raw float64) bool {
		tret := 0.064 + math.Mod(math.Abs(raw), 5)
		p, err := BinPeriod(tret, RAIDRBins)
		return err == nil && p <= tret
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestBinCounts(t *testing.T) {
	counts, err := BinCounts([]float64{0.07, 0.13, 0.20, 0.30, 3.0}, RAIDRBins)
	if err != nil {
		t.Fatal(err)
	}
	if counts[0.064] != 1 || counts[0.128] != 1 || counts[0.192] != 1 || counts[0.256] != 2 {
		t.Fatalf("counts = %v", counts)
	}
	if _, err := BinCounts([]float64{0.01}, RAIDRBins); err == nil {
		t.Fatal("unusable row must error")
	}
}

func TestSortedBins(t *testing.T) {
	in := []float64{0.256, 0.064, 0.192, 0.128}
	out := SortedBins(in)
	for i := 1; i < len(out); i++ {
		if out[i] < out[i-1] {
			t.Fatal("not sorted")
		}
	}
	if in[0] != 0.256 {
		t.Fatal("input mutated")
	}
}

func TestDecayModels(t *testing.T) {
	for _, m := range []DecayModel{ExpDecay{}, LinearDecay{}} {
		if f := m.Factor(0, 1); f != 1 {
			t.Errorf("%s: Factor(0) = %v, want 1", m.Name(), f)
		}
		if f := m.Factor(1, 1); math.Abs(f-SenseLimit) > 1e-12 {
			t.Errorf("%s: Factor(tret) = %v, want %v", m.Name(), f, SenseLimit)
		}
		prev := 1.0
		for i := 1; i <= 50; i++ {
			f := m.Factor(float64(i)*0.1, 1)
			if f > prev || f < 0 {
				t.Fatalf("%s: decay not monotone in [0,1]", m.Name())
			}
			prev = f
		}
		if f := m.Factor(1, 0); f != 0 {
			t.Errorf("%s: zero retention should decay instantly", m.Name())
		}
	}
	// Exponential loses charge faster than linear early in the period
	// (initial slope -ln2 vs -0.5), making it the conservative law for MPRSF.
	if (ExpDecay{}).Factor(0.3, 1) >= (LinearDecay{}).Factor(0.3, 1) {
		t.Fatal("exponential decay should be the conservative (faster) law early in the period")
	}
}

func TestDecayByName(t *testing.T) {
	for _, name := range []string{"", "exp", "exponential"} {
		m, err := DecayByName(name)
		if err != nil || m.Name() != "exponential" {
			t.Fatalf("%q: %v, %v", name, m, err)
		}
	}
	for _, name := range []string{"lin", "linear"} {
		m, err := DecayByName(name)
		if err != nil || m.Name() != "linear" {
			t.Fatalf("%q: %v, %v", name, m, err)
		}
	}
	if _, err := DecayByName("nope"); err == nil {
		t.Fatal("unknown model must error")
	}
}

func TestPaperProfileExactBinning(t *testing.T) {
	p, err := NewPaperProfile(DefaultCellDistribution(), 42)
	if err != nil {
		t.Fatal(err)
	}
	counts, err := p.BinCounts(RAIDRBins)
	if err != nil {
		t.Fatal(err)
	}
	want := map[float64]int{0.064: 68, 0.128: 101, 0.192: 145, 0.256: 7878}
	for b, w := range want {
		if counts[b] != w {
			t.Errorf("bin %v: %d rows, want %d", b, counts[b], w)
		}
	}
	if len(p.True) != device.PaperBank.Rows || len(p.Profiled) != device.PaperBank.Rows {
		t.Fatal("profile size wrong")
	}
}

func TestPaperProfileDeterministic(t *testing.T) {
	a, err := NewPaperProfile(DefaultCellDistribution(), 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewPaperProfile(DefaultCellDistribution(), 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Profiled {
		if a.Profiled[i] != b.Profiled[i] {
			t.Fatal("same seed must give the same profile")
		}
	}
	c, err := NewPaperProfile(DefaultCellDistribution(), 8)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Profiled {
		if a.Profiled[i] != c.Profiled[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds must give different profiles")
	}
}

func TestProfiledBelowTrue(t *testing.T) {
	p, err := NewPaperProfile(DefaultCellDistribution(), 42)
	if err != nil {
		t.Fatal(err)
	}
	for r := range p.True {
		if p.Profiled[r] >= p.True[r] {
			t.Fatalf("row %d: profiled %v not below true %v", r, p.Profiled[r], p.True[r])
		}
	}
}

func TestSampledProfile(t *testing.T) {
	geom := device.BankGeometry{Rows: 4096, Cols: 32}
	p, err := NewSampledProfile(geom, DefaultCellDistribution(), 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.True) != geom.Rows {
		t.Fatal("size wrong")
	}
	counts, err := p.BinCounts(RAIDRBins)
	if err != nil {
		t.Fatalf("some row unusable: %v", err)
	}
	weak := counts[0.064] + counts[0.128] + counts[0.192]
	// Expectation for 4096 rows is ~157 weak rows (half the paper bank's 314).
	if weak < 80 || weak > 260 {
		t.Fatalf("weak rows = %d, want around 157", weak)
	}
	if _, err := NewSampledProfile(device.BankGeometry{}, DefaultCellDistribution(), 1); err == nil {
		t.Fatal("bad geometry must be rejected")
	}
	bad := DefaultCellDistribution()
	bad.BulkSigma = -1
	if _, err := NewSampledProfile(geom, bad, 1); err == nil {
		t.Fatal("bad distribution must be rejected")
	}
}

func TestMinRetention(t *testing.T) {
	p, err := NewPaperProfile(DefaultCellDistribution(), 42)
	if err != nil {
		t.Fatal(err)
	}
	min := p.MinRetention()
	if min < 0.064 || min > 0.128 {
		t.Fatalf("weakest profiled row %v; the 64 ms bin must be populated", min)
	}
}

func TestPeriods(t *testing.T) {
	p, err := NewPaperProfile(DefaultCellDistribution(), 42)
	if err != nil {
		t.Fatal(err)
	}
	periods, err := p.Periods(RAIDRBins)
	if err != nil {
		t.Fatal(err)
	}
	for r, period := range periods {
		if period > p.Profiled[r] {
			t.Fatalf("row %d: period %v exceeds profiled retention %v", r, period, p.Profiled[r])
		}
	}
}

func TestTempModel(t *testing.T) {
	m := DefaultTempModel()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if s := m.Scale(m.RefC); s != 1 {
		t.Fatalf("scale at reference = %v, want 1", s)
	}
	if s := m.Scale(m.RefC - m.HalvingC); math.Abs(s-2) > 1e-12 {
		t.Fatalf("10C cooler should double retention, got %v", s)
	}
	if s := m.Scale(m.RefC + m.HalvingC); math.Abs(s-0.5) > 1e-12 {
		t.Fatalf("10C hotter should halve retention, got %v", s)
	}
	bad := TempModel{RefC: 85, HalvingC: 0}
	if err := bad.Validate(); err == nil {
		t.Fatal("zero slope must be rejected")
	}
}

func TestAtTemperature(t *testing.T) {
	p, err := NewPaperProfile(DefaultCellDistribution(), 42)
	if err != nil {
		t.Fatal(err)
	}
	m := DefaultTempModel()
	cool := m.AtTemperature(p, 65)
	for i := range p.True {
		if math.Abs(cool.True[i]-4*p.True[i]) > 1e-9 {
			t.Fatalf("row %d: 20C cooler should 4x retention", i)
		}
		if math.Abs(cool.Profiled[i]-4*p.Profiled[i]) > 1e-9 {
			t.Fatalf("row %d: profiled not scaled", i)
		}
	}
	// The original is untouched.
	if &cool.True[0] == &p.True[0] {
		t.Fatal("AtTemperature must copy")
	}
}
