package retention

import (
	"math"
	"testing"
	"testing/quick"
)

func TestVRTValidate(t *testing.T) {
	if err := DefaultVRT().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*VRT){
		func(v *VRT) { v.AffectedFrac = -1 },
		func(v *VRT) { v.AffectedFrac = 2 },
		func(v *VRT) { v.LowFactor = 0 },
		func(v *VRT) { v.LowFactor = 1 },
		func(v *VRT) { v.MeanDwell = 0 },
		func(v *VRT) { v.MinRetention = -1 },
	}
	for i, mut := range bad {
		v := DefaultVRT()
		mut(&v)
		if err := v.Validate(); err == nil {
			t.Errorf("mutation %d not caught", i)
		}
	}
}

func TestVRTAffectedFraction(t *testing.T) {
	v := DefaultVRT()
	const rows = 100000
	n := 0
	for r := 0; r < rows; r++ {
		if v.Affected(r, 1.0) {
			n++
		}
	}
	frac := float64(n) / rows
	if frac < 0.006 || frac > 0.015 {
		t.Fatalf("affected fraction %v, want ~%v", frac, v.AffectedFrac)
	}
	// Rows below MinRetention are never affected.
	for r := 0; r < 1000; r++ {
		if v.Affected(r, v.MinRetention/2) {
			t.Fatal("defect-limited row must not be VRT-modulated")
		}
	}
}

func TestVRTStateFactorTelegraph(t *testing.T) {
	v := DefaultVRT()
	// Find an affected row.
	row := -1
	for r := 0; r < 10000; r++ {
		if v.Affected(r, 1.0) {
			row = r
			break
		}
	}
	if row < 0 {
		t.Fatal("no affected row found")
	}
	sawHigh, sawLow := false, false
	for i := 0; i < 200; i++ {
		f := v.StateFactor(row, 1.0, float64(i)*0.05)
		switch f {
		case 1:
			sawHigh = true
		case v.LowFactor:
			sawLow = true
		default:
			t.Fatalf("state factor %v is neither 1 nor LowFactor", f)
		}
	}
	if !sawHigh || !sawLow {
		t.Fatal("telegraph process must visit both states over many dwells")
	}
	// Unaffected rows are always in the high state.
	for r := 0; r < 100; r++ {
		if !v.Affected(r, 1.0) {
			if v.StateFactor(r, 1.0, 0.123) != 1 {
				t.Fatal("unaffected row left the high state")
			}
			break
		}
	}
}

func TestVRTDecayFactorConsistency(t *testing.T) {
	v := DefaultVRT()
	base := ExpDecay{}
	// Unaffected rows: identical to the base law.
	row := -1
	for r := 0; r < 1000; r++ {
		if !v.Affected(r, 1.0) {
			row = r
			break
		}
	}
	got := v.DecayFactor(row, 1.0, 0.1, 0.35, base)
	want := base.Factor(0.25, 1.0)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("unaffected decay %v, want %v", got, want)
	}
	// Degenerate interval.
	if v.DecayFactor(row, 1.0, 0.5, 0.5, base) != 1 {
		t.Fatal("empty interval must not decay")
	}
}

// Property: for the exponential law, the piecewise integration is
// multiplicative across any split point (the Chapman-Kolmogorov property of
// the decay process).
func TestVRTDecayComposition(t *testing.T) {
	v := DefaultVRT()
	base := ExpDecay{}
	f := func(rowRaw uint16, aRaw, bRaw, cRaw float64) bool {
		row := int(rowRaw)
		a := math.Mod(math.Abs(aRaw), 1)
		b := a + math.Mod(math.Abs(bRaw), 1)
		c := b + math.Mod(math.Abs(cRaw), 1)
		whole := v.DecayFactor(row, 1.5, a, c, base)
		split := v.DecayFactor(row, 1.5, a, b, base) * v.DecayFactor(row, 1.5, b, c, base)
		return math.Abs(whole-split) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: VRT decay is never SLOWER than the base law (the low state only
// leaks faster).
func TestVRTDecayNeverGainsCharge(t *testing.T) {
	v := DefaultVRT()
	base := ExpDecay{}
	f := func(rowRaw uint16, dtRaw float64) bool {
		row := int(rowRaw)
		dt := math.Mod(math.Abs(dtRaw), 2)
		got := v.DecayFactor(row, 1.0, 0, dt, base)
		return got <= base.Factor(dt, 1.0)+1e-12 && got >= 0 && got <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestVRTDeterministicAcrossSeeds(t *testing.T) {
	a, b := DefaultVRT(), DefaultVRT()
	if a.StateFactor(123, 1.0, 0.5) != b.StateFactor(123, 1.0, 0.5) {
		t.Fatal("same parameters must give the same process")
	}
	b.Seed = 99
	same := true
	for r := 0; r < 2000; r++ {
		if a.Affected(r, 1.0) != b.Affected(r, 1.0) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds should affect different rows")
	}
}
