// Package retention models DRAM retention behaviour: the cell retention-time
// distribution (calibrated to the distribution of Liu et al. that the paper
// reproduces in Figure 3a), per-row weakest-cell profiles, data-pattern
// dependence, the RAIDR refresh-period binning of Figure 3b, and the charge
// leakage law that connects retention time to normalized cell charge.
//
// Conventions: times are in seconds; normalized charge v is the fraction of
// full charge, with v = 1 fully charged and v = 0.5 the raw sensing limit.
// A cell's retention time tRET is the time for its charge to decay from full
// to the sensing limit, so every decay model satisfies Factor(tRET) = 0.5.
package retention

import (
	"fmt"
	"math"
	"math/rand"
)

// SenseLimit is the raw normalized charge below which a cell's stored value
// can no longer be sensed (the 50% threshold of the paper's Figure 1b).
const SenseLimit = 0.5

// Pattern identifies a stored data pattern; retention depends on it (data
// pattern dependence, DPD).
type Pattern int

// The four data patterns of the paper's Section 3.1 evaluation.
const (
	PatternAllZeros Pattern = iota
	PatternAllOnes
	PatternAlternating
	PatternRandom
)

// String returns the pattern's conventional name.
func (p Pattern) String() string {
	switch p {
	case PatternAllZeros:
		return "all-0"
	case PatternAllOnes:
		return "all-1"
	case PatternAlternating:
		return "alternating"
	case PatternRandom:
		return "random"
	default:
		return fmt.Sprintf("Pattern(%d)", int(p))
	}
}

// Patterns lists all supported data patterns.
var Patterns = []Pattern{PatternAllZeros, PatternAllOnes, PatternAlternating, PatternRandom}

// PatternFactor returns the multiplicative derating of a cell's retention
// time when the array stores the given pattern, relative to the benign
// all-zeros case. Alternating neighbours maximize bitline coupling and
// sneak-path loss, so they are the worst case, consistent with the DPD
// characterization studies the paper cites (Khan et al., Liu et al.).
func PatternFactor(p Pattern) float64 {
	switch p {
	case PatternAllZeros:
		return 1.00
	case PatternAllOnes:
		return 0.97
	case PatternAlternating:
		return 0.85
	case PatternRandom:
		return 0.90
	default:
		return 0.85
	}
}

// WorstPatternFactor is the derating a profiler must assume when the stored
// data is unknown: the minimum over all patterns.
func WorstPatternFactor() float64 {
	worst := math.Inf(1)
	for _, p := range Patterns {
		if f := PatternFactor(p); f < worst {
			worst = f
		}
	}
	return worst
}

// CellDistribution is the parametric cell retention-time distribution
// calibrated to the shape of Figure 3a: a log-normal bulk (most cells retain
// for seconds) plus a rare polynomial-tail "weak cell" component that
// produces the short-retention rows of Figure 3b's low bins.
type CellDistribution struct {
	// Bulk log-normal component.
	BulkMedian float64 // median retention of normal cells (s)
	BulkSigma  float64 // log-space standard deviation
	BulkFloor  float64 // minimum bulk retention (s)

	// Weak-cell component: P(weak) = WeakProb; conditional CDF
	// ((t-WeakMin)/(WeakMax-WeakMin))^WeakShape on [WeakMin, WeakMax].
	WeakProb  float64
	WeakMin   float64 // s
	WeakMax   float64 // s
	WeakShape float64

	// Upper clamp matching the top of the paper's Figure 3a x-axis.
	Max float64 // s
}

// DefaultCellDistribution returns the distribution calibrated so that an
// 8192x32 bank reproduces the paper's Figure 3b bin counts in expectation
// (68 / 101 / 145 / 7878 rows at 64 / 128 / 192 / 256 ms) and the Figure 3a
// histogram's 65 ms - 4.7 s support with a single broad mode near 2 s.
func DefaultCellDistribution() CellDistribution {
	return CellDistribution{
		BulkMedian: 2.0,
		BulkSigma:  0.40,
		BulkFloor:  0.300,
		WeakProb:   0.0128,
		WeakMin:    0.065,
		WeakMax:    1.000,
		WeakShape:  1.5,
		Max:        4.681,
	}
}

// Validate reports the first unusable parameter.
func (d CellDistribution) Validate() error {
	switch {
	case d.BulkMedian <= 0:
		return fmt.Errorf("retention: BulkMedian must be positive, got %g", d.BulkMedian)
	case d.BulkSigma <= 0:
		return fmt.Errorf("retention: BulkSigma must be positive, got %g", d.BulkSigma)
	case d.BulkFloor <= 0:
		return fmt.Errorf("retention: BulkFloor must be positive, got %g", d.BulkFloor)
	case d.WeakProb < 0 || d.WeakProb > 1:
		return fmt.Errorf("retention: WeakProb must lie in [0,1], got %g", d.WeakProb)
	case d.WeakMin <= 0 || d.WeakMax <= d.WeakMin:
		return fmt.Errorf("retention: weak range [%g,%g] invalid", d.WeakMin, d.WeakMax)
	case d.WeakShape <= 0:
		return fmt.Errorf("retention: WeakShape must be positive, got %g", d.WeakShape)
	case d.Max <= d.BulkFloor:
		return fmt.Errorf("retention: Max %g must exceed BulkFloor %g", d.Max, d.BulkFloor)
	}
	return nil
}

// SampleCell draws one cell retention time (seconds).
func (d CellDistribution) SampleCell(rng *rand.Rand) float64 {
	if rng.Float64() < d.WeakProb {
		return d.sampleWeak(rng)
	}
	return d.sampleBulk(rng)
}

func (d CellDistribution) sampleWeak(rng *rand.Rand) float64 {
	u := rng.Float64()
	return d.WeakMin + (d.WeakMax-d.WeakMin)*math.Pow(u, 1/d.WeakShape)
}

func (d CellDistribution) sampleBulk(rng *rand.Rand) float64 {
	t := d.BulkMedian * math.Exp(d.BulkSigma*rng.NormFloat64())
	if t < d.BulkFloor {
		t = d.BulkFloor
	}
	if t > d.Max {
		t = d.Max
	}
	return t
}

// SampleRow draws the weakest-cell retention time of a row of cols cells.
//
// The bulk body is modeled at ROW granularity: one bulk draw represents the
// weakest of the row's strong cells (the bulk parameters are calibrated
// against the paper's row-level binning, Figure 3b). Weak-cell events occur
// independently per cell and pull the row down when they land. Taking a
// per-cell minimum over the bulk instead would compound the min over the
// already-row-calibrated body and systematically underestimate retention.
func (d CellDistribution) SampleRow(rng *rand.Rand, cols int) float64 {
	if cols <= 0 {
		cols = 1
	}
	min := d.sampleBulk(rng)
	for i := 0; i < cols; i++ {
		if rng.Float64() < d.WeakProb {
			if t := d.sampleWeak(rng); t < min {
				min = t
			}
		}
	}
	return min
}

// Histogram bins values into n equal-width bins over [lo, hi]; values
// outside the range clamp into the edge bins. It returns the bin counts and
// the bin centers, the form of the paper's Figure 3a.
func Histogram(values []float64, lo, hi float64, n int) (counts []int, centers []float64, err error) {
	if n <= 0 || hi <= lo {
		return nil, nil, fmt.Errorf("retention: bad histogram spec lo=%g hi=%g n=%d", lo, hi, n)
	}
	counts = make([]int, n)
	centers = make([]float64, n)
	w := (hi - lo) / float64(n)
	for i := range centers {
		centers[i] = lo + w*(float64(i)+0.5)
	}
	for _, v := range values {
		i := int((v - lo) / w)
		if i < 0 {
			i = 0
		}
		if i >= n {
			i = n - 1
		}
		counts[i]++
	}
	return counts, centers, nil
}
