package retention

import (
	"fmt"
	"math"
	"reflect"
	"sync"

	"vrldram/internal/lut"
)

// DecayLUTTol is the equivalence gate every decay LUT must pass before it is
// allowed to stand in for its analytic law: the worst deviation over the
// refinement grid must stay at or below this bound, or construction fails.
const DecayLUTTol = 1e-9

// decayLUTSamples is the table resolution. Shipped laws are functions of
// the ratio q = dt/tret alone, so one table covers every (dt, tret) pair;
// 2^15 cells keep the cubic's deviation two orders below the gate for the
// exponential law.
const decayLUTSamples = (1 << 15) + 1

// DecayLUT precomputes a decay law into a monotone cubic table over the
// ratio q = dt/tret, replacing the law's transcendental evaluation with an
// interpolated lookup. It is an approximation - bounded by DecayLUTTol, not
// bit-identical - so it is opt-in: nothing substitutes a DecayLUT for the
// analytic model implicitly.
//
// The table domain ends where the law first reaches zero (found by
// bisection), so clamp kinks like LinearDecay's land on the domain boundary
// instead of inside a cubic cell; ratios past the domain fall back to the
// analytic law.
type DecayLUT struct {
	base   DecayModel
	tab    *lut.Table
	qMax   float64
	maxErr float64
}

// NewDecayLUT builds and gates a decay LUT for base. It fails if the fitted
// table deviates from the analytic law by more than DecayLUTTol anywhere on
// the refinement grid.
func NewDecayLUT(base DecayModel) (*DecayLUT, error) {
	f := func(q float64) float64 { return base.Factor(q, 1) }
	qMax := decayDomainEnd(f)
	tab, err := lut.New(f, 0, qMax, decayLUTSamples)
	if err != nil {
		return nil, fmt.Errorf("retention: decay LUT for %s: %v", base.Name(), err)
	}
	maxErr, err := tab.Gate(f, DecayLUTTol, 4)
	if err != nil {
		return nil, fmt.Errorf("retention: decay LUT for %s failed its equivalence gate: %v", base.Name(), err)
	}
	return &DecayLUT{base: base, tab: tab, qMax: qMax, maxErr: maxErr}, nil
}

// decayDomainEnd picks the table's upper ratio bound: the first zero of f in
// (0, 64] located to float adjacency, or 64 if f never reaches zero there
// (the exponential law's 2^-64 is already beyond any physical margin).
func decayDomainEnd(f func(float64) float64) float64 {
	const qCap = 64.0
	if f(qCap) > 0 {
		return qCap
	}
	lo, hi := 0.0, qCap
	for math.Nextafter(lo, hi) < hi {
		mid := lo + (hi-lo)/2
		if f(mid) > 0 {
			lo = mid
		} else {
			hi = mid
		}
	}
	return hi
}

// Factor implements DecayModel by table lookup, with the analytic guards
// (dt <= 0, tret <= 0) and range clamp preserved exactly.
func (l *DecayLUT) Factor(dt, tret float64) float64 {
	if dt <= 0 {
		return 1
	}
	if tret <= 0 {
		return 0
	}
	q := dt / tret
	if q >= l.qMax {
		return l.base.Factor(dt, tret)
	}
	f := l.tab.Eval(q)
	if f < 0 {
		return 0
	}
	if f > 1 {
		return 1
	}
	return f
}

// Name implements DecayModel, marking the output so experiment records show
// when the interpolated path produced them.
func (l *DecayLUT) Name() string { return l.base.Name() + "+lut" }

// Base returns the analytic law the table was fitted to.
func (l *DecayLUT) Base() DecayModel { return l.base }

// MaxError returns the worst deviation the equivalence gate measured.
func (l *DecayLUT) MaxError() float64 { return l.maxErr }

var decayLUTCache sync.Map // DecayModel -> *DecayLUT

// DecayLUTFor returns a decay LUT for base, caching tables process-wide for
// comparable model values so fleet runs over the same law share one fit
// instead of re-sampling per device.
func DecayLUTFor(base DecayModel) (*DecayLUT, error) {
	if l, ok := base.(*DecayLUT); ok {
		return l, nil
	}
	if t := reflect.TypeOf(base); t != nil && t.Comparable() {
		if v, ok := decayLUTCache.Load(base); ok {
			return v.(*DecayLUT), nil
		}
		l, err := NewDecayLUT(base)
		if err != nil {
			return nil, err
		}
		v, _ := decayLUTCache.LoadOrStore(base, l)
		return v.(*DecayLUT), nil
	}
	return NewDecayLUT(base)
}
