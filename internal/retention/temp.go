package retention

import (
	"fmt"
	"math"
)

// Temperature dependence of retention. DRAM leakage is thermally activated:
// as a rule of thumb (used across the retention literature the paper cites),
// retention time halves for roughly every 10 degC of temperature increase.
// Profiles are measured at a reference worst-case temperature (85 degC, the
// upper end of the commercial range); running cooler adds margin, running
// hotter erodes it.

// TempModel converts retention times between operating temperatures.
type TempModel struct {
	// RefC is the temperature the profile's retention values refer to (degC).
	RefC float64
	// HalvingC is the temperature increase that halves retention (degC).
	HalvingC float64
}

// DefaultTempModel returns the standard 85 degC reference with a 10 degC
// halving slope.
func DefaultTempModel() TempModel {
	return TempModel{RefC: 85, HalvingC: 10}
}

// Validate reports the first unusable parameter.
func (m TempModel) Validate() error {
	if m.HalvingC <= 0 {
		return fmt.Errorf("retention: temperature halving slope must be positive, got %g", m.HalvingC)
	}
	return nil
}

// Scale returns the multiplicative retention factor when moving from the
// reference temperature to tempC: > 1 when cooler, < 1 when hotter.
func (m TempModel) Scale(tempC float64) float64 {
	return math.Exp2((m.RefC - tempC) / m.HalvingC)
}

// AtTemperature returns a copy of the profile with both true and profiled
// retention rescaled to the given operating temperature. Use it to model a
// bank running cooler or hotter than its profiling conditions; binning the
// rescaled profile implements temperature-compensated refresh.
func (m TempModel) AtTemperature(p *BankProfile, tempC float64) *BankProfile {
	s := m.Scale(tempC)
	out := &BankProfile{
		Geom:     p.Geom,
		True:     make([]float64, len(p.True)),
		Profiled: make([]float64, len(p.Profiled)),
	}
	for i := range p.True {
		out.True[i] = p.True[i] * s
	}
	for i := range p.Profiled {
		out.Profiled[i] = p.Profiled[i] * s
	}
	return out
}
