package retention

import (
	"math"
	"testing"
)

func TestAgingModelScale(t *testing.T) {
	m := DefaultAgingModel()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if s := m.Scale(0); s != 1 {
		t.Fatalf("Scale(0) = %g, want 1", s)
	}
	if s := m.Scale(-3); s != 1 {
		t.Fatalf("Scale(-3) = %g, want 1 (aging never improves retention backwards)", s)
	}
	one := m.Scale(1)
	if want := 1 - m.RatePerYear; math.Abs(one-want) > 1e-12 {
		t.Fatalf("Scale(1) = %g, want %g", one, want)
	}
	// Compounding: ten years is the tenth power of one year, and the scale
	// decreases monotonically.
	if got, want := m.Scale(10), math.Pow(one, 10); math.Abs(got-want) > 1e-12 {
		t.Fatalf("Scale(10) = %g, want %g", got, want)
	}
	prev := 1.0
	for y := 1.0; y <= 30; y++ {
		s := m.Scale(y)
		if s >= prev || s <= 0 {
			t.Fatalf("Scale(%g) = %g not in (0, %g)", y, s, prev)
		}
		prev = s
	}
}

func TestAgingModelValidate(t *testing.T) {
	for _, bad := range []float64{-0.01, 1, 1.5} {
		if err := (AgingModel{RatePerYear: bad}).Validate(); err == nil {
			t.Fatalf("rate %g must not validate", bad)
		}
	}
	if err := (AgingModel{RatePerYear: 0}).Validate(); err != nil {
		t.Fatalf("zero rate (no aging) must validate: %v", err)
	}
}

// TestVRTNextToggleMatchesDecaySegments pins the contract the scenario layer
// builds on: segmenting [t0,t1] at NextToggle boundaries and multiplying
// per-segment base factors scaled by StateFactor reproduces DecayFactor bit
// for bit.
func TestVRTNextToggleMatchesDecaySegments(t *testing.T) {
	v := VRT{AffectedFrac: 0.6, LowFactor: 0.25, MeanDwell: 0.07, MinRetention: 0.02, Seed: 5}
	base := ExpDecay{}
	affected := 0
	for row := 0; row < 64; row++ {
		tret := 0.05 + 0.01*float64(row%20)
		if v.Affected(row, tret) {
			affected++
		}
		for i := 0; i < 8; i++ {
			t0 := 0.09 * float64(i)
			t1 := t0 + 0.23
			want := v.DecayFactor(row, tret, t0, t1, base)
			got := 1.0
			tt := t0
			for tt < t1 {
				next := v.NextToggle(row, tret, tt)
				if next > t1 {
					next = t1
				}
				got *= base.Factor(next-tt, tret*v.StateFactor(row, tret, tt))
				tt = next
			}
			if got != want {
				t.Fatalf("row %d tret %g [%g,%g]: segmented %v, DecayFactor %v", row, tret, t0, t1, got, want)
			}
		}
	}
	if affected == 0 {
		t.Fatal("no affected rows; the equivalence was tested on the trivial path only")
	}

	// Unaffected rows never toggle.
	v2 := VRT{AffectedFrac: 0, LowFactor: 0.5, MeanDwell: 0.1, Seed: 1}
	if !math.IsInf(v2.NextToggle(3, 0.2, 0.05), 1) {
		t.Fatal("unaffected row must report +Inf next toggle")
	}
}
