package retention

import (
	"fmt"
	"math"
)

// Aging of the retention distribution. The retention retrospective (arXiv
// 2306.16037) lists wear-out among the field effects static profiling
// misses: leakage paths degrade slowly over a device's deployed life, so a
// profile measured at qualification overstates what the array sustains
// years later. The model here is deliberately simple - a compounding
// fractional retention loss per simulated year - which is enough to give
// the scenario layer a monotone multi-year ramp whose endpoints are easy to
// reason about in tests and experiments.

// AgingModel maps deployed years to a multiplicative retention factor.
type AgingModel struct {
	// RatePerYear is the fraction of retention lost per simulated year of
	// deployment, compounding: Scale(y) = (1-rate)^y.
	RatePerYear float64
}

// DefaultAgingModel returns a 3%/year compounding loss: ~22% of retention
// gone after eight deployed years, inside the envelope the wear-out
// literature reports for commodity DRAM.
func DefaultAgingModel() AgingModel {
	return AgingModel{RatePerYear: 0.03}
}

// Validate reports the first unusable parameter.
func (m AgingModel) Validate() error {
	if m.RatePerYear < 0 || m.RatePerYear >= 1 {
		return fmt.Errorf("retention: aging rate %g per year outside [0,1)", m.RatePerYear)
	}
	return nil
}

// Scale returns the retention multiplier after years of deployment:
// 1 at year zero, decreasing monotonically.
func (m AgingModel) Scale(years float64) float64 {
	if years <= 0 {
		return 1
	}
	return math.Pow(1-m.RatePerYear, years)
}
