package retention

import (
	"fmt"
	"math"
)

// DecayModel maps elapsed time and a cell's retention time to the
// multiplicative decay of its normalized charge. Every model satisfies
// Factor(0, t) = 1 and Factor(t, t) = SenseLimit: a full cell decays to the
// sensing limit exactly at its retention time.
type DecayModel interface {
	// Factor returns the fraction of charge remaining after dt seconds on a
	// cell with retention time tret, relative to the charge at the start of
	// the interval.
	Factor(dt, tret float64) float64
	// Name identifies the model in experiment output.
	Name() string
}

// ExpDecay is the default leakage law: charge decays exponentially, the
// behaviour of a capacitor leaking through its (roughly ohmic) leakage
// paths. v(dt) = v0 * 2^(-dt/tret), so v(tret) = v0/2.
type ExpDecay struct{}

// Factor implements DecayModel.
func (ExpDecay) Factor(dt, tret float64) float64 {
	if dt <= 0 {
		return 1
	}
	if tret <= 0 {
		return 0
	}
	return math.Exp2(-dt / tret)
}

// Name implements DecayModel.
func (ExpDecay) Name() string { return "exponential" }

// LinearDecay is the ablation alternative: charge decays linearly,
// v(dt) = v0 - (1-SenseLimit)*dt/tret (clamped at 0), matching the same
// full-to-threshold retention time. Early in the period the exponential law
// loses charge faster (its initial slope is -ln2/tret versus linear's
// -0.5/tret), so exponential is the conservative choice for MPRSF and
// linear assigns weakly higher values.
//
// Note the linear law is an absolute ramp; Factor converts it to the
// multiplicative form the charge tracker uses, which is exact for a cell
// starting the interval fully charged and conservative otherwise.
type LinearDecay struct{}

// Factor implements DecayModel.
func (LinearDecay) Factor(dt, tret float64) float64 {
	if dt <= 0 {
		return 1
	}
	if tret <= 0 {
		return 0
	}
	f := 1 - (1-SenseLimit)*dt/tret
	if f < 0 {
		return 0
	}
	return f
}

// Name implements DecayModel.
func (LinearDecay) Name() string { return "linear" }

// DecayByName returns the named decay model ("exponential" or "linear").
func DecayByName(name string) (DecayModel, error) {
	switch name {
	case "exponential", "exp", "":
		return ExpDecay{}, nil
	case "linear", "lin":
		return LinearDecay{}, nil
	default:
		return nil, fmt.Errorf("retention: unknown decay model %q", name)
	}
}
