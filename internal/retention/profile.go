package retention

import (
	"fmt"
	"math"
	"math/rand"

	"vrldram/internal/device"
)

// BankProfile holds the per-row retention data of one DRAM bank:
//
//   - True is the physical weakest-cell retention time of each row under the
//     benign all-zeros pattern (what the silicon does);
//   - Profiled is what a REAPER/Liu-style profiler reports: the true value
//     derated by the worst-case data-pattern factor and the profiler's
//     guardband, which is what binning and MPRSF computation must consume.
//
// Keeping both lets the failure-injection tests demonstrate that consuming
// un-derated values loses data.
type BankProfile struct {
	Geom     device.BankGeometry
	True     []float64 // per-row true retention (s)
	Profiled []float64 // per-row profiled (derated) retention (s)
}

// ProfilerGuardband is the extra multiplicative margin a profiler applies on
// top of worst-pattern derating, absorbing temperature and VRT drift (the
// paper cites AVATAR and REAPER for these effects).
const ProfilerGuardband = 0.95

// Profile derates a true retention time the way the simulated profiler does.
func ProfileRetention(trueRet float64) float64 {
	return trueRet * WorstPatternFactor() * ProfilerGuardband
}

// NewSampledProfile draws a bank profile from the cell distribution: each
// row's true retention is the minimum over its cells, and the profiled value
// applies worst-pattern derating and the profiler guardband. The result is
// deterministic for a given seed.
func NewSampledProfile(geom device.BankGeometry, dist CellDistribution, seed int64) (*BankProfile, error) {
	if err := geom.Validate(); err != nil {
		return nil, err
	}
	if err := dist.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	p := &BankProfile{
		Geom:     geom,
		True:     make([]float64, geom.Rows),
		Profiled: make([]float64, geom.Rows),
	}
	floor := RAIDRBins[0]
	for r := 0; r < geom.Rows; r++ {
		t := dist.SampleRow(rng, geom.Cols)
		// Rows whose derated retention falls below the lowest supported
		// refresh period are unusable at any rate; real chips replace them
		// with spare rows, which we model by resampling.
		for ProfileRetention(t) < floor {
			t = dist.SampleRow(rng, geom.Cols)
		}
		p.True[r] = t
		p.Profiled[r] = ProfileRetention(t)
	}
	return p, nil
}

// NewPaperProfile constructs the exact Figure 3b bank: an 8192-row profile
// whose PROFILED retention lands exactly 68 / 101 / 145 / 7878 rows in the
// 64 / 128 / 192 / 256 ms bins. Within-bin values are sampled
// deterministically from the seed: uniformly inside the three finite bins,
// and from the truncated bulk log-normal inside the open 256 ms bin. Row
// positions are shuffled so weak rows scatter across the bank as they do on
// real chips.
func NewPaperProfile(dist CellDistribution, seed int64) (*BankProfile, error) {
	if err := dist.Validate(); err != nil {
		return nil, err
	}
	geom := device.PaperBank
	rng := rand.New(rand.NewSource(seed))

	total := 0
	for _, c := range PaperBinCounts {
		total += c
	}
	if total != geom.Rows {
		return nil, fmt.Errorf("retention: paper bin counts sum to %d, want %d", total, geom.Rows)
	}

	profiled := make([]float64, 0, geom.Rows)
	// Finite bins: uniform within [bin, nextBin).
	for i := 0; i < len(RAIDRBins)-1; i++ {
		lo, hi := RAIDRBins[i], RAIDRBins[i+1]
		// Keep a hair inside the bin so derating round-trips stay stable.
		lo += 0.001
		for k := 0; k < PaperBinCounts[i]; k++ {
			profiled = append(profiled, lo+(hi-lo-0.002)*rng.Float64())
		}
	}
	// Open top bin: truncated bulk log-normal at or above 256 ms.
	top := RAIDRBins[len(RAIDRBins)-1]
	for k := 0; k < PaperBinCounts[len(PaperBinCounts)-1]; k++ {
		var t float64
		for {
			t = dist.BulkMedian * math.Exp(dist.BulkSigma*rng.NormFloat64())
			if t > dist.Max {
				t = dist.Max
			}
			// Profiled value must stay in the top bin after derating.
			if t*WorstPatternFactor()*ProfilerGuardband >= top {
				break
			}
		}
		profiled = append(profiled, t*WorstPatternFactor()*ProfilerGuardband)
	}
	rng.Shuffle(len(profiled), func(i, j int) {
		profiled[i], profiled[j] = profiled[j], profiled[i]
	})

	p := &BankProfile{
		Geom:     geom,
		True:     make([]float64, geom.Rows),
		Profiled: profiled,
	}
	derate := WorstPatternFactor() * ProfilerGuardband
	for r := range p.True {
		p.True[r] = profiled[r] / derate
	}
	return p, nil
}

// BinCounts returns the profile's Figure 3b table over the given bins, using
// the profiled retention values as a real controller would.
func (p *BankProfile) BinCounts(bins []float64) (map[float64]int, error) {
	return BinCounts(p.Profiled, bins)
}

// Periods returns the per-row refresh period assignment over the given bins.
func (p *BankProfile) Periods(bins []float64) ([]float64, error) {
	out := make([]float64, len(p.Profiled))
	for r, t := range p.Profiled {
		period, err := BinPeriod(t, bins)
		if err != nil {
			return nil, fmt.Errorf("row %d: %w", r, err)
		}
		out[r] = period
	}
	return out, nil
}

// MinRetention returns the weakest profiled retention in the bank.
func (p *BankProfile) MinRetention() float64 {
	min := math.Inf(1)
	for _, t := range p.Profiled {
		if t < min {
			min = t
		}
	}
	return min
}
