package retention

import (
	"math"
	"math/rand"
	"testing"
)

// shippedDecayModels is every analytic law DecayByName can hand out; each
// must fit a gated LUT, and the LUT must track the analytic law within
// DecayLUTTol across the whole (dt, tret) plane, not just the sampling axis.
var shippedDecayModels = []DecayModel{ExpDecay{}, LinearDecay{}}

func TestDecayLUTToleranceAllModels(t *testing.T) {
	for _, base := range shippedDecayModels {
		t.Run(base.Name(), func(t *testing.T) {
			l, err := NewDecayLUT(base)
			if err != nil {
				t.Fatal(err)
			}
			if l.MaxError() > DecayLUTTol {
				t.Fatalf("gate passed but MaxError %g exceeds tolerance %g", l.MaxError(), DecayLUTTol)
			}
			// Dense grid over retention times spanning the paper's bins and
			// elapsed times from a fraction of a period to deep decay.
			trets := []float64{16e-3, 64e-3, 128e-3, 256e-3, 1.3, 7.8}
			worst := 0.0
			for _, tret := range trets {
				for k := 0; k <= 4000; k++ {
					dt := tret * 8 * float64(k) / 4000
					got := l.Factor(dt, tret)
					want := base.Factor(dt, tret)
					if e := math.Abs(got - want); e > worst {
						worst = e
					}
				}
			}
			if worst > DecayLUTTol {
				t.Fatalf("worst (dt, tret) grid deviation %g exceeds %g", worst, DecayLUTTol)
			}
			// Random (dt, tret) pairs, including ratios past the table domain
			// (which must fall back to the analytic law exactly).
			rng := rand.New(rand.NewSource(5))
			for i := 0; i < 20000; i++ {
				tret := math.Exp(rng.Float64()*8 - 4)
				dt := tret * rng.Float64() * 100
				got := l.Factor(dt, tret)
				want := base.Factor(dt, tret)
				if e := math.Abs(got - want); e > DecayLUTTol {
					t.Fatalf("Factor(%g, %g) = %.17g, want %.17g (err %g)", dt, tret, got, want, e)
				}
			}
		})
	}
}

func TestDecayLUTGuards(t *testing.T) {
	l, err := NewDecayLUT(ExpDecay{})
	if err != nil {
		t.Fatal(err)
	}
	if got := l.Factor(0, 1); got != 1 {
		t.Fatalf("Factor(0, 1) = %g, want 1", got)
	}
	if got := l.Factor(-1, 1); got != 1 {
		t.Fatalf("Factor(-1, 1) = %g, want 1", got)
	}
	if got := l.Factor(1, 0); got != 0 {
		t.Fatalf("Factor(1, 0) = %g, want 0", got)
	}
	if got := l.Factor(1, -1); got != 0 {
		t.Fatalf("Factor(1, -1) = %g, want 0", got)
	}
}

// TestDecayLUTAnalyticFallback: ratios at or past the table's domain end must
// be bit-identical to the base law, not interpolated.
func TestDecayLUTAnalyticFallback(t *testing.T) {
	for _, base := range shippedDecayModels {
		l, err := NewDecayLUT(base)
		if err != nil {
			t.Fatal(err)
		}
		for _, q := range []float64{l.qMax, l.qMax * 1.5, 200} {
			if got, want := l.Factor(q, 1), base.Factor(q, 1); got != want {
				t.Fatalf("%s: Factor(%g, 1) = %.17g, want analytic %.17g", base.Name(), q, got, want)
			}
		}
	}
}

// TestDecayLUTLinearKinkOnBoundary: LinearDecay clamps to zero at
// q = 1/(1-SenseLimit); the bisected domain end must land the kink on the
// table boundary (where the clamp is exact) instead of inside a cubic cell.
func TestDecayLUTLinearKinkOnBoundary(t *testing.T) {
	l, err := NewDecayLUT(LinearDecay{})
	if err != nil {
		t.Fatal(err)
	}
	kink := 1 / (1 - SenseLimit)
	if l.qMax < kink || l.qMax > math.Nextafter(kink, math.Inf(1)) {
		t.Fatalf("qMax = %.17g, want the clamp kink %.17g to float adjacency", l.qMax, kink)
	}
	// ExpDecay never reaches zero, so its domain runs to the 64-period cap.
	le, err := NewDecayLUT(ExpDecay{})
	if err != nil {
		t.Fatal(err)
	}
	if le.qMax != 64 {
		t.Fatalf("exponential qMax = %g, want 64", le.qMax)
	}
}

func TestDecayLUTName(t *testing.T) {
	l, err := NewDecayLUT(ExpDecay{})
	if err != nil {
		t.Fatal(err)
	}
	if got := l.Name(); got != "exponential+lut" {
		t.Fatalf("Name() = %q, want %q", got, "exponential+lut")
	}
	if l.Base() != (ExpDecay{}) {
		t.Fatalf("Base() = %v, want ExpDecay", l.Base())
	}
}

func TestDecayLUTForCaching(t *testing.T) {
	a, err := DecayLUTFor(ExpDecay{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := DecayLUTFor(ExpDecay{})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("DecayLUTFor re-fit a comparable model instead of caching")
	}
	// Passing an existing LUT through must be the identity, not a re-wrap.
	c, err := DecayLUTFor(a)
	if err != nil {
		t.Fatal(err)
	}
	if c != a {
		t.Fatal("DecayLUTFor wrapped an existing *DecayLUT")
	}
}
