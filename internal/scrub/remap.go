package scrub

import "sort"

// RemapTable is the spare-row indirection a quarantine decision lands in: a
// bounded pool of spare rows and a map from retired weak rows to the spare
// each one's data now lives on. Spares are allocated in order and never
// released - a row that has degraded enough to need one is not trusted
// again - and remapping an already-remapped row is idempotent: it returns
// the existing spare without consuming a new one.
type RemapTable struct {
	total int
	next  int
	m     map[int]int // weak row -> spare index
}

// NewRemapTable returns a table with the given spare budget; a negative
// budget clamps to zero (no spares: every quarantine escalates).
func NewRemapTable(spares int) *RemapTable {
	if spares < 0 {
		spares = 0
	}
	return &RemapTable{total: spares, m: make(map[int]int)}
}

// Remap assigns the row a spare, or returns the one it already holds. The
// second result is false only when the row is unmapped and the pool is
// exhausted - the caller's hard-fail escalation path.
func (t *RemapTable) Remap(row int) (spare int, ok bool) {
	if sp, done := t.m[row]; done {
		return sp, true
	}
	if t.next >= t.total {
		return 0, false
	}
	sp := t.next
	t.next++
	t.m[row] = sp
	return sp, true
}

// Spare returns the spare index holding the row's data, if remapped.
func (t *RemapTable) Spare(row int) (int, bool) {
	sp, ok := t.m[row]
	return sp, ok
}

// IsRemapped reports whether the row has been quarantined to a spare.
func (t *RemapTable) IsRemapped(row int) bool {
	_, ok := t.m[row]
	return ok
}

// SparesLeft returns the number of unallocated spares.
func (t *RemapTable) SparesLeft() int { return t.total - t.next }

// Total returns the configured spare budget.
func (t *RemapTable) Total() int { return t.total }

// Len returns the number of remapped rows.
func (t *RemapTable) Len() int { return len(t.m) }

// Rows returns the remapped rows in increasing order (deterministic, for
// snapshots and reports).
func (t *RemapTable) Rows() []int {
	out := make([]int, 0, len(t.m))
	for r := range t.m {
		out = append(out, r)
	}
	sort.Ints(out)
	return out
}
