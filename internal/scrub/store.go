package scrub

import (
	"fmt"

	"vrldram/internal/dram"
	"vrldram/internal/ecc"
)

// PatrolResult is what one patrol read learned about a row.
type PatrolResult struct {
	Outcome ecc.DecodeResult
	Charge  float64 // sensed weakest-cell charge at the read
}

// RowStore is the storage a Scrubber patrols: something that can be read
// row by row through a SECDED-classified path and can retire a row whose
// data has been relocated to a spare. Both the charge-level dram.Bank and
// the bit-level dram.DataBank satisfy it (via BankStore / DataBankStore).
type RowStore interface {
	Rows() int
	// PatrolRead senses the row at time now through the ECC path and
	// restores it (a patrol read is an activation).
	PatrolRead(row int, now float64) (PatrolResult, error)
	// Retire marks the row as quarantined: its data lives on a spare now,
	// so the weak row must stop contributing integrity violations.
	Retire(row int) error
}

// BankStore adapts the charge-level dram.Bank: a patrol read senses the
// weakest cell, classifies the charge exactly as the SECDED decode of the
// row's word would resolve (ecc.ChargeClassifier is that mapping), and the
// activation restores the row.
type BankStore struct {
	bank *dram.Bank
	cls  ecc.ChargeClassifier
}

// NewBankStore wraps the bank with the given classifier.
func NewBankStore(b *dram.Bank, cls ecc.ChargeClassifier) (*BankStore, error) {
	if b == nil {
		return nil, fmt.Errorf("scrub: nil bank")
	}
	if err := cls.Validate(); err != nil {
		return nil, err
	}
	return &BankStore{bank: b, cls: cls}, nil
}

// Rows implements RowStore.
func (s *BankStore) Rows() int { return s.bank.Geom.Rows }

// PatrolRead implements RowStore.
func (s *BankStore) PatrolRead(row int, now float64) (PatrolResult, error) {
	res, err := s.bank.Access(row, now)
	if err != nil {
		return PatrolResult{}, err
	}
	return PatrolResult{Outcome: s.cls.Classify(res.ChargeBefore), Charge: res.ChargeBefore}, nil
}

// Retire implements RowStore.
func (s *BankStore) Retire(row int) error { return s.bank.Retire(row) }

// DataBankStore adapts the bit-level dram.DataBank: patrol reads go through
// the stored codeword and the real (72,64) decode, so the outcome reflects
// actual bit flips, not just the charge classification.
type DataBankStore struct {
	db *dram.DataBank
}

// NewDataBankStore wraps the data bank.
func NewDataBankStore(db *dram.DataBank) (*DataBankStore, error) {
	if db == nil {
		return nil, fmt.Errorf("scrub: nil data bank")
	}
	return &DataBankStore{db: db}, nil
}

// Rows implements RowStore.
func (s *DataBankStore) Rows() int { return s.db.Geom.Rows }

// PatrolRead implements RowStore.
func (s *DataBankStore) PatrolRead(row int, now float64) (PatrolResult, error) {
	rr, err := s.db.ReadWord(row, now)
	if err != nil {
		return PatrolResult{}, err
	}
	return PatrolResult{Outcome: rr.Result, Charge: rr.Charge}, nil
}

// Retire implements RowStore.
func (s *DataBankStore) Retire(row int) error { return s.db.Retire(row) }
