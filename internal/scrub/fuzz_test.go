package scrub

import (
	"bytes"
	"testing"

	"vrldram/internal/ecc"
)

// FuzzScrubStateDecode drives RestoreState with arbitrary bytes: it must
// never panic, and a blob it rejects must leave the scrubber's state
// untouched. Valid snapshots (the seed corpus includes one) must survive a
// restore + re-snapshot as a fixed point.
func FuzzScrubStateDecode(f *testing.F) {
	seedStore := newFakeStore(8)
	seed, err := New(seedStore, Config{Spares: 2, Reprofile: func(int) (float64, error) { return 0.128, nil }})
	if err != nil {
		f.Fatal(err)
	}
	seedStore.outcome[3] = ecc.Corrected
	seedStore.outcome[6] = ecc.Uncorrectable
	if err := seed.SweepOnce(0.001); err != nil {
		f.Fatal(err)
	}
	if blob, err := seed.SnapshotState(); err == nil {
		f.Add(blob)
	}
	f.Add([]byte{})
	f.Add([]byte("scrub1"))

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := New(newFakeStore(8), Config{Spares: 2})
		if err != nil {
			t.Fatal(err)
		}
		before, err := s.SnapshotState()
		if err != nil {
			t.Fatal(err)
		}
		if err := s.RestoreState(data); err != nil {
			after, serr := s.SnapshotState()
			if serr != nil {
				t.Fatalf("re-snapshot after rejection: %v", serr)
			}
			if !bytes.Equal(before, after) {
				t.Fatal("rejected blob mutated the scrubber")
			}
			return
		}
		// Accepted: the restored state must re-encode to a blob the decoder
		// accepts again (round-trip closure).
		blob, err := s.SnapshotState()
		if err != nil {
			t.Fatalf("snapshot after accepted restore: %v", err)
		}
		if err := s.RestoreState(blob); err != nil {
			t.Fatalf("re-restore of accepted state: %v", err)
		}
	})
}
