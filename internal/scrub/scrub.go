// Package scrub implements an online ECC patrol scrubber with a
// self-healing repair pipeline - the detect -> diagnose -> repair -> verify
// loop VRL-DRAM needs once its retention profile can go stale (VRT,
// temperature, aging; the ecosystem's AVATAR-style answer).
//
// The scrubber walks the bank's rows on a configurable sweep period,
// reading each row through the SECDED path and classifying it:
//
//   - clean: nothing to do (but a suspect row earns a clean-streak credit,
//     and after K consecutive clean patrols it is healed: promoted one rung
//     back toward its nominal schedule via core.Promoter);
//   - corrected: the weakest cell is sagging. The row is demoted
//     (core.Demoter, falling back to the one-shot core.Upgrader) and, on
//     its first offense, re-profiled with a targeted single-row campaign
//     (Config.Reprofile); a measured retention below the floor period
//     quarantines the row immediately;
//   - uncorrectable: the data is at risk. The row is quarantined: remapped
//     to a bounded spare-row pool (RemapTable) and retired from the store,
//     or - when the spares run out - escalated as a hard failure.
//
// Patrol reads contend with demand traffic: a busy bank defers the read
// with exponential backoff, and a deadline monitor books an SLO miss for
// every coverage window (tREFW by default) in which the patrol visited
// fewer rows than the configured fraction.
//
// The scrubber implements core.Snapshotter, so a checkpointed run that
// includes one resumes bit-identically (see internal/sim and
// internal/checkpoint).
package scrub

import (
	"fmt"

	"vrldram/internal/core"
	"vrldram/internal/ecc"
	"vrldram/internal/retention"
)

// Config tunes the scrubber. The zero value of every field selects the
// documented default.
type Config struct {
	// SweepPeriod is the time one full patrol of the bank takes (default
	// 64 ms, one tREFW: every row is read once per refresh window).
	SweepPeriod float64
	// Window is the coverage-SLO accounting window (default 64 ms, tREFW).
	Window float64
	// MinCoverage is the fraction of the window's expected patrol visits
	// that must complete before the deadline monitor books an SLO miss
	// (default 0.9).
	MinCoverage float64
	// CleanPromote is K, the consecutive clean patrols a suspect row needs
	// before it is healed and promoted back (default 4).
	CleanPromote int
	// Spares is the spare-row budget for quarantine remapping (default 16;
	// negative means none - every quarantine escalates to a hard failure).
	Spares int
	// Floor is the fastest refresh period the system can offer a degraded
	// row (default the fastest RAIDR bin); a re-profiled retention below it
	// means no schedule can save the row and it is quarantined.
	Floor float64
	// BackoffBase/BackoffMax bound the exponential retry backoff a patrol
	// read applies when the bank is busy (defaults 1 us and 256 us).
	BackoffBase float64
	BackoffMax  float64

	// Sched, when set, is the repair target: it is probed for core.Demoter,
	// core.Upgrader, and core.Promoter, and the best available hook is used
	// (Demote preferred over the all-at-once Upgrade).
	Sched core.Scheduler
	// Reprofile, when set, runs a targeted retention measurement of one
	// suspect row (e.g. profiler.ProfileRow) and returns the measured
	// retention in seconds. It must be deterministic: it runs inside the
	// simulation loop and its outcome is covered by checkpoint/resume.
	Reprofile func(row int) (float64, error)
	// OnHardFail, when set, observes every row that needed a spare when
	// none was left - the escalation hook (alerting, host notification).
	OnHardFail func(row int)
}

func (c Config) withDefaults() Config {
	if c.SweepPeriod == 0 {
		c.SweepPeriod = 0.064
	}
	if c.Window == 0 {
		c.Window = 0.064
	}
	if c.MinCoverage == 0 {
		c.MinCoverage = 0.9
	}
	if c.CleanPromote == 0 {
		c.CleanPromote = 4
	}
	if c.Spares == 0 {
		c.Spares = 16
	} else if c.Spares < 0 {
		c.Spares = 0
	}
	if c.Floor == 0 {
		c.Floor = retention.SortedBins(retention.RAIDRBins)[0]
	}
	if c.BackoffBase == 0 {
		c.BackoffBase = 1e-6
	}
	if c.BackoffMax == 0 {
		c.BackoffMax = 256e-6
	}
	return c
}

// Validate reports the first unusable field after defaulting.
func (c Config) Validate() error {
	switch {
	case c.SweepPeriod <= 0:
		return fmt.Errorf("scrub: sweep period %g must be positive", c.SweepPeriod)
	case c.Window <= 0:
		return fmt.Errorf("scrub: SLO window %g must be positive", c.Window)
	case c.MinCoverage <= 0 || c.MinCoverage > 1:
		return fmt.Errorf("scrub: min coverage %g outside (0,1]", c.MinCoverage)
	case c.CleanPromote < 1:
		return fmt.Errorf("scrub: CleanPromote %d must be >= 1", c.CleanPromote)
	case c.Floor <= 0:
		return fmt.Errorf("scrub: floor period %g must be positive", c.Floor)
	case c.BackoffBase <= 0 || c.BackoffMax < c.BackoffBase:
		return fmt.Errorf("scrub: backoff bounds [%g,%g] invalid", c.BackoffBase, c.BackoffMax)
	}
	return nil
}

// rowHealth is the per-row diagnosis state.
type rowHealth struct {
	suspect     bool
	cleanStreak int
	measured    float64 // last targeted re-profile result (0 = never measured)
}

// Scrubber is the patrol engine. Construct with New; drive either online
// (Tick from a simulator's event loop) or offline (SweepOnce in a
// maintenance window).
type Scrubber struct {
	store RowStore
	cfg   Config
	rows  int

	demoter  core.Demoter
	upgrader core.Upgrader
	promoter core.Promoter

	interval float64 // per-row patrol spacing: SweepPeriod / rows
	cursor   int     // next row to patrol
	nextDue  float64 // time the next patrol read is due
	backoff  float64 // current busy-retry delay

	windowStart float64
	visited     int64 // patrol visits in the current SLO window

	health []rowHealth
	failed []bool // hard-failed rows: quarantine needed, no spare left
	remap  *RemapTable

	stats core.ScrubStats
}

// New builds a scrubber over the store.
func New(store RowStore, cfg Config) (*Scrubber, error) {
	if store == nil {
		return nil, fmt.Errorf("scrub: nil row store")
	}
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rows := store.Rows()
	if rows <= 0 {
		return nil, fmt.Errorf("scrub: store has %d rows", rows)
	}
	s := &Scrubber{
		store:    store,
		cfg:      cfg,
		rows:     rows,
		interval: cfg.SweepPeriod / float64(rows),
		backoff:  cfg.BackoffBase,
		health:   make([]rowHealth, rows),
		failed:   make([]bool, rows),
		remap:    NewRemapTable(cfg.Spares),
	}
	s.nextDue = s.interval
	if cfg.Sched != nil {
		s.demoter, _ = cfg.Sched.(core.Demoter)
		s.upgrader, _ = cfg.Sched.(core.Upgrader)
		s.promoter, _ = cfg.Sched.(core.Promoter)
	}
	return s, nil
}

// Rows returns the number of rows under patrol.
func (s *Scrubber) Rows() int { return s.rows }

// NextDue returns the time the next patrol read wants the bank.
func (s *Scrubber) NextDue() float64 { return s.nextDue }

// Remapped returns the quarantined rows in increasing order.
func (s *Scrubber) Remapped() []int { return s.remap.Rows() }

// IsQuarantined reports whether the row is remapped to a spare or
// hard-failed (either way, the patrol no longer reads it).
func (s *Scrubber) IsQuarantined(row int) bool {
	if row < 0 || row >= s.rows {
		return false
	}
	return s.remap.IsRemapped(row) || s.failed[row]
}

// rollWindow closes every SLO window that has fully elapsed by now,
// booking a miss for each one whose patrol coverage fell short.
func (s *Scrubber) rollWindow(now float64) {
	expected := s.cfg.Window / s.interval // patrol visits a full window should see
	for now >= s.windowStart+s.cfg.Window {
		if float64(s.visited) < s.cfg.MinCoverage*expected {
			s.stats.SLOMisses++
		}
		s.visited = 0
		s.windowStart += s.cfg.Window
	}
}

// Tick is the online driver: the simulator calls it when NextDue() has
// arrived, passing the time the bank is busy until (a refresh or demand
// burst in flight). A busy bank defers the read with exponential backoff;
// an idle one patrols the cursor row. Returns whether a read happened.
func (s *Scrubber) Tick(now, busyUntil float64) (bool, error) {
	s.rollWindow(now)
	if busyUntil > now {
		// Demand traffic owns the bank: retry with backoff, doubling up to
		// the cap so a saturated bank is probed, not hammered.
		s.stats.BusyRetries++
		s.nextDue = now + s.backoff
		s.backoff *= 2
		if s.backoff > s.cfg.BackoffMax {
			s.backoff = s.cfg.BackoffMax
		}
		return false, nil
	}
	if err := s.visit(s.cursor, now); err != nil {
		return false, err
	}
	s.cursor = (s.cursor + 1) % s.rows
	s.backoff = s.cfg.BackoffBase
	s.nextDue = now + s.interval
	return true, nil
}

// SweepOnce patrols every row once at time now - the offline
// maintenance-window scrub. It shares visit with the online patrol, so the
// offline and online paths classify and repair identically.
func (s *Scrubber) SweepOnce(now float64) error {
	for r := 0; r < s.rows; r++ {
		if err := s.visit(r, now); err != nil {
			return err
		}
	}
	return nil
}

// visit patrols one row: read, classify, repair.
func (s *Scrubber) visit(row int, now float64) error {
	s.stats.RowsPatrolled++
	s.visited++
	if s.remap.IsRemapped(row) || s.failed[row] {
		// Quarantined: the data lives on a spare (or the row is abandoned);
		// the patrol spends the slot but has nothing to verify here.
		return nil
	}
	res, err := s.store.PatrolRead(row, now)
	if err != nil {
		return err
	}
	switch res.Outcome {
	case ecc.OK:
		h := &s.health[row]
		if h.suspect {
			h.cleanStreak++
			if h.cleanStreak >= s.cfg.CleanPromote {
				// Verified: K consecutive clean patrols. Heal the row and
				// hand its slack back.
				h.suspect = false
				h.cleanStreak = 0
				s.stats.RowsHealed++
				if s.promoter != nil {
					s.promoter.Promote(row)
				}
			}
		}
		return nil
	case ecc.Corrected:
		return s.onCorrected(row)
	default: // ecc.Uncorrectable
		return s.onUncorrectable(row)
	}
}

// OnEccEvent feeds the repair pipeline an ECC classification observed
// outside the patrol - a refresh or demand sense that decoded corrected or
// uncorrectable. The response is identical to a patrol read's, so detection
// converges no matter which path sees the sag first.
func (s *Scrubber) OnEccEvent(row int, outcome ecc.DecodeResult) error {
	if row < 0 || row >= s.rows || s.remap.IsRemapped(row) || s.failed[row] {
		return nil
	}
	switch outcome {
	case ecc.Corrected:
		return s.onCorrected(row)
	case ecc.Uncorrectable:
		return s.onUncorrectable(row)
	}
	return nil
}

// NoteViolation marks a row suspect from out-of-band evidence (e.g. a
// sense violation recorded in an earlier window) without reading it - the
// offline diagnosis entry point.
func (s *Scrubber) NoteViolation(row int) {
	if row < 0 || row >= s.rows || s.remap.IsRemapped(row) || s.failed[row] {
		return
	}
	s.health[row].suspect = true
	s.health[row].cleanStreak = 0
}

// Suspects returns every row the pipeline currently distrusts - suspect,
// remapped, or hard-failed - in increasing order.
func (s *Scrubber) Suspects() []int {
	var out []int
	for r := 0; r < s.rows; r++ {
		if s.health[r].suspect || s.failed[r] || s.remap.IsRemapped(r) {
			out = append(out, r)
		}
	}
	return out
}

// onCorrected handles a single-bit (sagging cell) detection: demote, and on
// the first offense diagnose the row with a targeted re-profile.
func (s *Scrubber) onCorrected(row int) error {
	s.stats.Corrected++
	h := &s.health[row]
	h.cleanStreak = 0
	firstOffense := !h.suspect
	h.suspect = true
	if s.demoter != nil {
		s.demoter.Demote(row)
	} else if s.upgrader != nil {
		s.upgrader.Upgrade(row)
	}
	if firstOffense && s.cfg.Reprofile != nil {
		m, err := s.cfg.Reprofile(row)
		if err != nil {
			return fmt.Errorf("scrub: re-profiling row %d: %w", row, err)
		}
		s.stats.Reprofiles++
		h.measured = m
		if m < s.cfg.Floor {
			// No refresh schedule can carry this row any more: quarantine
			// before the sag becomes uncorrectable.
			return s.quarantine(row)
		}
	}
	return nil
}

// onUncorrectable handles a multi-bit detection: the data is at risk, so
// the row is quarantined immediately.
func (s *Scrubber) onUncorrectable(row int) error {
	s.stats.Uncorrectable++
	s.health[row].cleanStreak = 0
	s.health[row].suspect = true
	return s.quarantine(row)
}

// quarantine remaps the row to a spare, or escalates when the pool is dry.
func (s *Scrubber) quarantine(row int) error {
	if _, ok := s.remap.Remap(row); ok {
		s.stats.RowsRemapped++
		return s.store.Retire(row)
	}
	// Out of spares: hard failure. Pin the row to the fastest schedule as a
	// best effort and tell the escalation hook; the row stays in the store,
	// so its violations keep surfacing - this failure mode must be loud.
	s.failed[row] = true
	s.stats.HardFails++
	if s.upgrader != nil {
		s.upgrader.Upgrade(row)
	}
	if s.cfg.OnHardFail != nil {
		s.cfg.OnHardFail(row)
	}
	return nil
}

// ScrubSnapshot implements core.ScrubReporter: the counters so far, with
// every coverage window that has fully elapsed by now closed out. It does
// not disturb the live window state, so reporting cannot perturb a run.
func (s *Scrubber) ScrubSnapshot(now float64) core.ScrubStats {
	st := s.stats
	expected := s.cfg.Window / s.interval
	ws, visited := s.windowStart, s.visited
	for now >= ws+s.cfg.Window {
		if float64(visited) < s.cfg.MinCoverage*expected {
			st.SLOMisses++
		}
		visited = 0
		ws += s.cfg.Window
	}
	st.SparesLeft = s.remap.SparesLeft()
	return st
}
