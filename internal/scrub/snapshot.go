package scrub

import (
	"fmt"
	"math"

	"vrldram/internal/core"
)

// stateTag versions the scrubber's snapshot blob.
const stateTag = "scrub1"

// SnapshotState implements core.Snapshotter: the patrol cursor and cadence,
// the backoff and SLO-window accounting, the per-row diagnosis state, the
// remap table, the hard-fail set, and the counters. Restoring the blob into
// a freshly constructed scrubber over an identically configured store
// continues the patrol bit-identically.
func (s *Scrubber) SnapshotState() ([]byte, error) {
	var e core.StateEncoder
	e.Tag(stateTag)
	e.Int(int64(s.rows))
	e.Int(int64(s.cursor))
	e.Float(s.nextDue)
	e.Float(s.backoff)
	e.Float(s.windowStart)
	e.Int(s.visited)
	for i := range s.health {
		h := &s.health[i]
		e.Bool(h.suspect)
		e.Int(int64(h.cleanStreak))
		e.Float(h.measured)
		e.Bool(s.failed[i])
	}
	e.Int(int64(s.remap.Total()))
	rows := s.remap.Rows()
	e.Int(int64(len(rows)))
	for _, r := range rows {
		sp, _ := s.remap.Spare(r)
		e.Int(int64(r))
		e.Int(int64(sp))
	}
	e.Int(s.stats.RowsPatrolled)
	e.Int(s.stats.Corrected)
	e.Int(s.stats.Uncorrectable)
	e.Int(s.stats.Reprofiles)
	e.Int(s.stats.RowsHealed)
	e.Int(s.stats.RowsRemapped)
	e.Int(s.stats.HardFails)
	e.Int(s.stats.BusyRetries)
	e.Int(s.stats.SLOMisses)
	return e.Data(), nil
}

// RestoreState implements core.Snapshotter. Every field is validated before
// any live state is replaced, so a corrupt or mismatched blob leaves the
// scrubber untouched.
func (s *Scrubber) RestoreState(data []byte) error {
	d := core.NewStateDecoder(data)
	d.ExpectTag(stateTag)
	nrows := d.Int()
	if d.Err() != nil {
		return d.Err()
	}
	if int(nrows) != s.rows {
		return fmt.Errorf("scrub: snapshot has %d rows, scrubber has %d", nrows, s.rows)
	}
	cursor := d.Int()
	nextDue := d.Float()
	backoff := d.Float()
	windowStart := d.Float()
	visited := d.Int()
	health := make([]rowHealth, nrows)
	failed := make([]bool, nrows)
	for i := range health {
		health[i].suspect = d.Bool()
		health[i].cleanStreak = int(d.Int())
		health[i].measured = d.Float()
		failed[i] = d.Bool()
	}
	total := d.Int()
	npairs := d.Int()
	if d.Err() != nil {
		return d.Err()
	}
	if total != int64(s.remap.Total()) {
		return fmt.Errorf("scrub: snapshot spare budget %d, scrubber configured with %d", total, s.remap.Total())
	}
	if npairs < 0 || npairs > total {
		return fmt.Errorf("scrub: snapshot remaps %d rows with a budget of %d", npairs, total)
	}
	type pair struct{ row, spare int }
	pairs := make([]pair, npairs)
	spareUsed := make([]bool, npairs)
	prevRow := -1
	for i := range pairs {
		pairs[i] = pair{row: int(d.Int()), spare: int(d.Int())}
		if d.Err() != nil {
			return d.Err()
		}
		p := pairs[i]
		switch {
		case p.row <= prevRow || p.row >= s.rows:
			return fmt.Errorf("scrub: snapshot remap row %d out of order or range", p.row)
		case p.spare < 0 || p.spare >= int(npairs):
			// Spares are allocated sequentially and never released, so a
			// table with n remaps uses exactly spares 0..n-1.
			return fmt.Errorf("scrub: snapshot spare index %d outside [0,%d)", p.spare, npairs)
		case spareUsed[p.spare]:
			return fmt.Errorf("scrub: snapshot assigns spare %d twice", p.spare)
		}
		spareUsed[p.spare] = true
		prevRow = p.row
	}
	var stats core.ScrubStats
	stats.RowsPatrolled = d.Int()
	stats.Corrected = d.Int()
	stats.Uncorrectable = d.Int()
	stats.Reprofiles = d.Int()
	stats.RowsHealed = d.Int()
	stats.RowsRemapped = d.Int()
	stats.HardFails = d.Int()
	stats.BusyRetries = d.Int()
	stats.SLOMisses = d.Int()
	if err := d.Finish(); err != nil {
		return err
	}
	switch {
	case cursor < 0 || cursor >= nrows:
		return fmt.Errorf("scrub: snapshot cursor %d outside [0,%d)", cursor, nrows)
	case math.IsNaN(nextDue) || math.IsInf(nextDue, 0) || nextDue < 0:
		return fmt.Errorf("scrub: snapshot next-due time %g invalid", nextDue)
	case math.IsNaN(backoff) || backoff <= 0:
		return fmt.Errorf("scrub: snapshot backoff %g invalid", backoff)
	case math.IsNaN(windowStart) || windowStart < 0:
		return fmt.Errorf("scrub: snapshot window start %g invalid", windowStart)
	case visited < 0:
		return fmt.Errorf("scrub: snapshot visit count %d negative", visited)
	}
	for i := range health {
		if health[i].cleanStreak < 0 {
			return fmt.Errorf("scrub: snapshot clean streak %d for row %d negative", health[i].cleanStreak, i)
		}
		if m := health[i].measured; math.IsNaN(m) || m < 0 {
			return fmt.Errorf("scrub: snapshot measured retention %g for row %d invalid", m, i)
		}
	}
	for _, p := range pairs {
		if failed[p.row] {
			return fmt.Errorf("scrub: snapshot row %d both remapped and hard-failed", p.row)
		}
	}
	// All validated: install.
	s.cursor = int(cursor)
	s.nextDue = nextDue
	s.backoff = backoff
	s.windowStart = windowStart
	s.visited = visited
	copy(s.health, health)
	copy(s.failed, failed)
	rm := NewRemapTable(int(total))
	for _, p := range pairs {
		rm.m[p.row] = p.spare
	}
	rm.next = int(npairs)
	s.remap = rm
	s.stats = stats
	return nil
}
