package scrub

import (
	"bytes"
	"fmt"
	"math"
	"reflect"
	"testing"

	"vrldram/internal/core"
	"vrldram/internal/device"
	"vrldram/internal/dram"
	"vrldram/internal/ecc"
	"vrldram/internal/retention"
)

func bankGeom(rows int) device.BankGeometry { return device.BankGeometry{Rows: rows, Cols: 32} }

// fakeStore is a scriptable RowStore: each row reports a fixed outcome until
// the test changes it, and every read and retire is logged.
type fakeStore struct {
	rows    int
	outcome []ecc.DecodeResult
	reads   []int
	retired []int
	readErr error
}

func newFakeStore(rows int) *fakeStore {
	return &fakeStore{rows: rows, outcome: make([]ecc.DecodeResult, rows)}
}

func (f *fakeStore) Rows() int { return f.rows }

func (f *fakeStore) PatrolRead(row int, now float64) (PatrolResult, error) {
	if f.readErr != nil {
		return PatrolResult{}, f.readErr
	}
	f.reads = append(f.reads, row)
	return PatrolResult{Outcome: f.outcome[row], Charge: 1}, nil
}

func (f *fakeStore) Retire(row int) error {
	f.retired = append(f.retired, row)
	return nil
}

// fakeSched records the repair calls the scrubber makes. It implements all
// three repair capabilities; the capability-preference tests mask them off
// through wrapper types below.
type fakeSched struct {
	demoted, upgraded, promoted []int
}

func (s *fakeSched) Name() string                     { return "fake" }
func (s *fakeSched) Period(int) float64               { return 0.064 }
func (s *fakeSched) RefreshOp(int, float64) core.Op   { return core.Op{Full: true, Cycles: 1, Alpha: 1} }
func (s *fakeSched) OnAccess(int, float64)            {}
func (s *fakeSched) MPRSF(int) int                    { return 0 }
func (s *fakeSched) Demote(row int)                   { s.demoted = append(s.demoted, row) }
func (s *fakeSched) Upgrade(row int)                  { s.upgraded = append(s.upgraded, row) }
func (s *fakeSched) Promote(row int)                  { s.promoted = append(s.promoted, row) }

// upgradeOnlySched masks off Demote/Promote so the fallback path is used.
type upgradeOnlySched struct{ inner *fakeSched }

func (s upgradeOnlySched) Name() string                   { return "fake-up" }
func (s upgradeOnlySched) Period(int) float64             { return 0.064 }
func (s upgradeOnlySched) RefreshOp(int, float64) core.Op { return core.Op{Full: true, Cycles: 1, Alpha: 1} }
func (s upgradeOnlySched) OnAccess(int, float64)          {}
func (s upgradeOnlySched) MPRSF(int) int                  { return 0 }
func (s upgradeOnlySched) Upgrade(row int)                { s.inner.Upgrade(row) }

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{SweepPeriod: -1},
		{Window: -1},
		{MinCoverage: 2},
		{CleanPromote: -3},
		{Floor: -0.1},
		{BackoffBase: 0.5, BackoffMax: 0.25},
	}
	for i, cfg := range bad {
		if _, err := New(newFakeStore(4), cfg); err == nil {
			t.Errorf("case %d: New accepted invalid config %+v", i, cfg)
		}
	}
	if _, err := New(nil, Config{}); err == nil {
		t.Fatal("New accepted a nil store")
	}
	if _, err := New(newFakeStore(0), Config{}); err == nil {
		t.Fatal("New accepted an empty store")
	}
}

func TestPatrolCursorAndCadence(t *testing.T) {
	st := newFakeStore(4)
	s, err := New(st, Config{SweepPeriod: 0.064})
	if err != nil {
		t.Fatal(err)
	}
	interval := 0.064 / 4
	now := s.NextDue()
	for i := 0; i < 8; i++ {
		visited, err := s.Tick(now, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !visited {
			t.Fatalf("tick %d: idle bank not patrolled", i)
		}
		if got := s.NextDue(); got != now+interval {
			t.Fatalf("tick %d: next due %g, want %g", i, got, now+interval)
		}
		now = s.NextDue()
	}
	want := []int{0, 1, 2, 3, 0, 1, 2, 3}
	if !reflect.DeepEqual(st.reads, want) {
		t.Fatalf("patrol order %v, want %v", st.reads, want)
	}
	if st := s.ScrubSnapshot(now); st.RowsPatrolled != 8 {
		t.Fatalf("RowsPatrolled = %d, want 8", st.RowsPatrolled)
	}
}

func TestBusyBackoff(t *testing.T) {
	st := newFakeStore(4)
	s, err := New(st, Config{BackoffBase: 1e-6, BackoffMax: 4e-6})
	if err != nil {
		t.Fatal(err)
	}
	now := s.NextDue()
	busyUntil := now + 1.0 // bank busy far into the future
	// Deferrals double the backoff up to the cap.
	wantGaps := []float64{1e-6, 2e-6, 4e-6, 4e-6}
	for i, gap := range wantGaps {
		if visited, err := s.Tick(now, busyUntil); err != nil || visited {
			t.Fatalf("tick %d: visited=%v err=%v on a busy bank", i, visited, err)
		}
		if got := s.NextDue() - now; math.Abs(got-gap) > 1e-9*gap {
			t.Fatalf("tick %d: backoff gap %g, want %g", i, got, gap)
		}
		now = s.NextDue()
	}
	if len(st.reads) != 0 {
		t.Fatalf("busy bank was read: %v", st.reads)
	}
	// An idle tick patrols and resets the backoff.
	if visited, err := s.Tick(now, 0); err != nil || !visited {
		t.Fatalf("idle tick: visited=%v err=%v", visited, err)
	}
	stats := s.ScrubSnapshot(now)
	if stats.BusyRetries != 4 {
		t.Fatalf("BusyRetries = %d, want 4", stats.BusyRetries)
	}
	if s.backoff != 1e-6 {
		t.Fatalf("backoff not reset after an idle visit: %g", s.backoff)
	}
}

func TestCoverageSLO(t *testing.T) {
	st := newFakeStore(4)
	s, err := New(st, Config{SweepPeriod: 0.064, Window: 0.064, MinCoverage: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	// Starve the patrol for two full windows: the bank stays busy, so zero
	// rows are visited and both windows miss their SLO.
	if _, err := s.Tick(0.130, 1.0); err != nil {
		t.Fatal(err)
	}
	if got := s.ScrubSnapshot(0.130).SLOMisses; got != 2 {
		t.Fatalf("SLOMisses = %d, want 2", got)
	}
	// ScrubSnapshot must be non-mutating: the live counter still books the
	// same misses when the window actually rolls.
	if got := s.stats.SLOMisses; got != 2 {
		t.Fatalf("live SLOMisses = %d, want 2 (rolled by Tick)", got)
	}
}

func TestHealAfterKCleanPatrols(t *testing.T) {
	const K = 3
	st := newFakeStore(4)
	sched := &fakeSched{}
	reprofiled := []int{}
	s, err := New(st, Config{
		CleanPromote: K,
		Sched:        sched,
		Reprofile: func(row int) (float64, error) {
			reprofiled = append(reprofiled, row)
			return 0.128, nil // healthy: above the floor
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	st.outcome[2] = ecc.Corrected
	if err := s.SweepOnce(0); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sched.demoted, []int{2}) {
		t.Fatalf("demoted %v, want [2]", sched.demoted)
	}
	if !reflect.DeepEqual(reprofiled, []int{2}) {
		t.Fatalf("reprofiled %v, want [2]", reprofiled)
	}
	if !reflect.DeepEqual(s.Suspects(), []int{2}) {
		t.Fatalf("suspects %v, want [2]", s.Suspects())
	}
	// A second offense while already suspect must not re-profile again.
	if err := s.SweepOnce(0.064); err != nil {
		t.Fatal(err)
	}
	if len(reprofiled) != 1 {
		t.Fatalf("re-profiled a known suspect: %v", reprofiled)
	}
	// The row recovers: K clean sweeps heal and promote it.
	st.outcome[2] = ecc.OK
	for i := 0; i < K; i++ {
		if len(sched.promoted) != 0 {
			t.Fatalf("promoted after only %d clean sweeps", i)
		}
		if err := s.SweepOnce(0.128 + float64(i)*0.064); err != nil {
			t.Fatal(err)
		}
	}
	if !reflect.DeepEqual(sched.promoted, []int{2}) {
		t.Fatalf("promoted %v, want [2]", sched.promoted)
	}
	if len(s.Suspects()) != 0 {
		t.Fatalf("suspects %v after healing, want none", s.Suspects())
	}
	stats := s.ScrubSnapshot(1)
	if stats.Corrected != 2 || stats.RowsHealed != 1 || stats.Reprofiles != 1 {
		t.Fatalf("stats = %+v, want Corrected 2, RowsHealed 1, Reprofiles 1", stats)
	}
}

func TestUpgradeFallbackWithoutDemoter(t *testing.T) {
	st := newFakeStore(2)
	inner := &fakeSched{}
	s, err := New(st, Config{Sched: upgradeOnlySched{inner: inner}})
	if err != nil {
		t.Fatal(err)
	}
	st.outcome[1] = ecc.Corrected
	if err := s.SweepOnce(0); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(inner.upgraded, []int{1}) {
		t.Fatalf("upgraded %v, want [1]", inner.upgraded)
	}
	if len(inner.demoted) != 0 {
		t.Fatalf("demoted %v through an upgrade-only scheduler", inner.demoted)
	}
}

func TestReprofileBelowFloorQuarantines(t *testing.T) {
	st := newFakeStore(4)
	s, err := New(st, Config{
		Floor:     0.064,
		Spares:    2,
		Reprofile: func(int) (float64, error) { return 0.032, nil }, // below floor
	})
	if err != nil {
		t.Fatal(err)
	}
	st.outcome[1] = ecc.Corrected
	if err := s.SweepOnce(0); err != nil {
		t.Fatal(err)
	}
	if !s.IsQuarantined(1) {
		t.Fatal("row measuring below the floor was not quarantined")
	}
	if !reflect.DeepEqual(st.retired, []int{1}) {
		t.Fatalf("store retired %v, want [1]", st.retired)
	}
	stats := s.ScrubSnapshot(1)
	if stats.RowsRemapped != 1 || stats.SparesLeft != 1 {
		t.Fatalf("stats = %+v, want RowsRemapped 1, SparesLeft 1", stats)
	}
}

func TestReprofileError(t *testing.T) {
	st := newFakeStore(2)
	s, err := New(st, Config{Reprofile: func(int) (float64, error) { return 0, fmt.Errorf("boom") }})
	if err != nil {
		t.Fatal(err)
	}
	st.outcome[0] = ecc.Corrected
	if err := s.SweepOnce(0); err == nil {
		t.Fatal("re-profile error was swallowed")
	}
}

func TestUncorrectableQuarantineAndExhaustion(t *testing.T) {
	st := newFakeStore(4)
	sched := &fakeSched{}
	var escalated []int
	s, err := New(st, Config{
		Spares:     2,
		Sched:      sched,
		OnHardFail: func(row int) { escalated = append(escalated, row) },
	})
	if err != nil {
		t.Fatal(err)
	}
	st.outcome[0] = ecc.Uncorrectable
	st.outcome[1] = ecc.Uncorrectable
	st.outcome[3] = ecc.Uncorrectable
	if err := s.SweepOnce(0); err != nil {
		t.Fatal(err)
	}
	// Rows 0 and 1 consume the two spares; row 3 finds the pool dry.
	if !reflect.DeepEqual(s.Remapped(), []int{0, 1}) {
		t.Fatalf("remapped %v, want [0 1]", s.Remapped())
	}
	if !reflect.DeepEqual(st.retired, []int{0, 1}) {
		t.Fatalf("store retired %v, want [0 1]", st.retired)
	}
	if !reflect.DeepEqual(escalated, []int{3}) {
		t.Fatalf("hard-fail escalations %v, want [3]", escalated)
	}
	if !s.IsQuarantined(3) {
		t.Fatal("hard-failed row not reported quarantined")
	}
	// Best-effort containment: the hard-failed row was pinned fastest.
	if !reflect.DeepEqual(sched.upgraded, []int{3}) {
		t.Fatalf("upgraded %v, want [3]", sched.upgraded)
	}
	stats := s.ScrubSnapshot(1)
	if stats.Uncorrectable != 3 || stats.RowsRemapped != 2 || stats.HardFails != 1 || stats.SparesLeft != 0 {
		t.Fatalf("stats = %+v", stats)
	}
	// Quarantined rows are skipped on later patrols: read log stays flat.
	reads := len(st.reads)
	if err := s.SweepOnce(0.064); err != nil {
		t.Fatal(err)
	}
	if got := len(st.reads) - reads; got != 1 { // only row 2 is still live
		t.Fatalf("second sweep read %d rows, want 1", got)
	}
	// A second uncorrectable report against a remapped row must not consume
	// anything further (double-remap protection).
	if err := s.OnEccEvent(0, ecc.Uncorrectable); err != nil {
		t.Fatal(err)
	}
	after := s.ScrubSnapshot(1)
	if after.Uncorrectable != 3 || after.RowsRemapped != 2 || after.HardFails != 1 {
		t.Fatalf("double-remap changed stats: %+v", after)
	}
}

func TestOnEccEventMatchesPatrolResponse(t *testing.T) {
	st := newFakeStore(4)
	sched := &fakeSched{}
	s, err := New(st, Config{Sched: sched, Spares: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.OnEccEvent(2, ecc.Corrected); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sched.demoted, []int{2}) {
		t.Fatalf("demoted %v, want [2]", sched.demoted)
	}
	if err := s.OnEccEvent(3, ecc.Uncorrectable); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s.Remapped(), []int{3}) {
		t.Fatalf("remapped %v, want [3]", s.Remapped())
	}
	// Out-of-range rows and OK outcomes are no-ops.
	if err := s.OnEccEvent(-1, ecc.Uncorrectable); err != nil {
		t.Fatal(err)
	}
	if err := s.OnEccEvent(99, ecc.Corrected); err != nil {
		t.Fatal(err)
	}
	if err := s.OnEccEvent(0, ecc.OK); err != nil {
		t.Fatal(err)
	}
	if got := s.ScrubSnapshot(0); got.Corrected != 1 || got.Uncorrectable != 1 {
		t.Fatalf("stats = %+v", got)
	}
}

func TestNoteViolation(t *testing.T) {
	s, err := New(newFakeStore(4), Config{})
	if err != nil {
		t.Fatal(err)
	}
	s.NoteViolation(1)
	s.NoteViolation(3)
	s.NoteViolation(-5) // ignored
	s.NoteViolation(99) // ignored
	if !reflect.DeepEqual(s.Suspects(), []int{1, 3}) {
		t.Fatalf("suspects %v, want [1 3]", s.Suspects())
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	build := func() (*fakeStore, *Scrubber) {
		st := newFakeStore(8)
		s, err := New(st, Config{Spares: 3, CleanPromote: 4, Reprofile: func(int) (float64, error) { return 0.128, nil }})
		if err != nil {
			t.Fatal(err)
		}
		return st, s
	}
	st, s := build()
	// Drive the scrubber into a state with every feature live: suspects,
	// clean streaks, a remap, a hard fail, backoff, and window progress.
	st.outcome[1] = ecc.Corrected
	st.outcome[4] = ecc.Uncorrectable
	now := s.NextDue()
	for i := 0; i < 11; i++ {
		busy := 0.0
		if i == 5 {
			busy = now + 1e-5 // one deferral to move the backoff off its base
		}
		if _, err := s.Tick(now, busy); err != nil {
			t.Fatal(err)
		}
		now = s.NextDue()
	}
	st.outcome[1] = ecc.OK // start a clean streak on the suspect
	if _, err := s.Tick(now, 0); err != nil {
		t.Fatal(err)
	}

	blob, err := s.SnapshotState()
	if err != nil {
		t.Fatal(err)
	}
	_, fresh := build()
	if err := fresh.RestoreState(blob); err != nil {
		t.Fatal(err)
	}
	blob2, err := fresh.SnapshotState()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob, blob2) {
		t.Fatal("restore + re-snapshot is not a fixed point")
	}
	if !reflect.DeepEqual(fresh.Remapped(), s.Remapped()) {
		t.Fatalf("remap table did not survive: %v vs %v", fresh.Remapped(), s.Remapped())
	}
	if !reflect.DeepEqual(fresh.Suspects(), s.Suspects()) {
		t.Fatalf("suspects did not survive: %v vs %v", fresh.Suspects(), s.Suspects())
	}
	if fresh.NextDue() != s.NextDue() {
		t.Fatalf("patrol cadence did not survive: %g vs %g", fresh.NextDue(), s.NextDue())
	}
	if !reflect.DeepEqual(fresh.ScrubSnapshot(1), s.ScrubSnapshot(1)) {
		t.Fatalf("stats did not survive:\n got %+v\nwant %+v", fresh.ScrubSnapshot(1), s.ScrubSnapshot(1))
	}
}

func TestRestoreStateRejectsBadBlobs(t *testing.T) {
	mk := func(rows, spares int) *Scrubber {
		s, err := New(newFakeStore(rows), Config{Spares: spares})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	good, err := mk(4, 2).SnapshotState()
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		blob []byte
		into *Scrubber
	}{
		{"garbage", []byte("not a snapshot"), mk(4, 2)},
		{"empty", nil, mk(4, 2)},
		{"truncated", good[:len(good)-3], mk(4, 2)},
		{"trailing", append(append([]byte{}, good...), 0xEE), mk(4, 2)},
		{"row mismatch", good, mk(5, 2)},
		{"budget mismatch", good, mk(4, 3)},
	}
	for _, tc := range cases {
		before, _ := tc.into.SnapshotState()
		if err := tc.into.RestoreState(tc.blob); err == nil {
			t.Errorf("%s: RestoreState accepted the blob", tc.name)
		}
		after, _ := tc.into.SnapshotState()
		if !bytes.Equal(before, after) {
			t.Errorf("%s: a rejected blob mutated the scrubber", tc.name)
		}
	}
}

func TestRestoreStateRejectsInconsistentRemaps(t *testing.T) {
	// Hand-build blobs whose framing is fine but whose remap table is
	// impossible: spare index out of the sequential range, duplicate spares,
	// rows out of order, and a row both failed and remapped.
	encode := func(mutate func(pairs *[][2]int64, failedRow *int64)) []byte {
		pairs := [][2]int64{{0, 0}, {2, 1}}
		failedRow := int64(-1)
		if mutate != nil {
			mutate(&pairs, &failedRow)
		}
		var e core.StateEncoder
		e.Tag(stateTag)
		e.Int(4) // rows
		e.Int(0) // cursor
		e.Float(0.001)
		e.Float(1e-6)
		e.Float(0)
		e.Int(0)
		for i := int64(0); i < 4; i++ {
			e.Bool(false)
			e.Int(0)
			e.Float(0)
			e.Bool(i == failedRow)
		}
		e.Int(2) // spare budget
		e.Int(int64(len(pairs)))
		for _, p := range pairs {
			e.Int(p[0])
			e.Int(p[1])
		}
		for i := 0; i < 9; i++ {
			e.Int(0)
		}
		return e.Data()
	}

	s, err := New(newFakeStore(4), Config{Spares: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RestoreState(encode(nil)); err != nil {
		t.Fatalf("baseline blob rejected: %v", err)
	}

	bad := map[string]func(p *[][2]int64, f *int64){
		"spare out of sequential range": func(p *[][2]int64, f *int64) { *p = [][2]int64{{0, 1}} },
		"duplicate spare":               func(p *[][2]int64, f *int64) { *p = [][2]int64{{0, 0}, {2, 0}} },
		"rows out of order":             func(p *[][2]int64, f *int64) { *p = [][2]int64{{2, 0}, {0, 1}} },
		"row out of range":              func(p *[][2]int64, f *int64) { *p = [][2]int64{{0, 0}, {9, 1}} },
		"over budget":                   func(p *[][2]int64, f *int64) { *p = [][2]int64{{0, 0}, {1, 1}, {2, 2}} },
		"remapped and failed":           func(p *[][2]int64, f *int64) { *f = 0 },
	}
	for name, mutate := range bad {
		s, err := New(newFakeStore(4), Config{Spares: 2})
		if err != nil {
			t.Fatal(err)
		}
		if name == "over budget" {
			s, err = New(newFakeStore(4), Config{Spares: 2})
			if err != nil {
				t.Fatal(err)
			}
		}
		if err := s.RestoreState(encode(mutate)); err == nil {
			t.Errorf("%s: blob accepted", name)
		}
	}
}

func TestRemapTable(t *testing.T) {
	rm := NewRemapTable(2)
	if rm.SparesLeft() != 2 || rm.Total() != 2 || rm.Len() != 0 {
		t.Fatalf("fresh table: %d/%d/%d", rm.SparesLeft(), rm.Total(), rm.Len())
	}
	sp, ok := rm.Remap(7)
	if !ok || sp != 0 {
		t.Fatalf("first remap -> (%d,%v), want (0,true)", sp, ok)
	}
	// Idempotent: a double remap returns the existing spare, consuming none.
	sp2, ok := rm.Remap(7)
	if !ok || sp2 != 0 || rm.SparesLeft() != 1 {
		t.Fatalf("double remap -> (%d,%v) with %d spares left", sp2, ok, rm.SparesLeft())
	}
	if _, ok := rm.Remap(9); !ok {
		t.Fatal("second row rejected with a spare left")
	}
	if _, ok := rm.Remap(11); ok {
		t.Fatal("remap succeeded with no spares left")
	}
	// The exhausted pool still answers for existing mappings.
	if sp, ok := rm.Remap(9); !ok || sp != 1 {
		t.Fatalf("existing mapping lost after exhaustion: (%d,%v)", sp, ok)
	}
	if !rm.IsRemapped(7) || rm.IsRemapped(11) {
		t.Fatal("IsRemapped wrong")
	}
	if got := rm.Rows(); !reflect.DeepEqual(got, []int{7, 9}) {
		t.Fatalf("Rows() = %v, want [7 9]", got)
	}
	if NewRemapTable(-3).Total() != 0 {
		t.Fatal("negative budget not clamped to zero")
	}
}

// TestBankStorePatrol checks the two concrete stores against a real bank: a
// healthy row reads OK, a decayed row classifies through the charge
// classifier, and Retire reaches the bank.
func TestBankStorePatrol(t *testing.T) {
	profile := &retention.BankProfile{
		Geom: bankGeom(4),
		// At the 64 ms read below, row 1's charge lands in the correctable
		// band (2^(-0.064/0.05) ~ 0.41) and row 2's is deep below the
		// correctable floor (2^(-0.064/0.005) ~ 1e-4).
		True:     []float64{10, 0.05, 0.005, 10},
		Profiled: []float64{10, 0.05, 0.005, 10},
	}
	bank, err := dram.NewBank(profile, retention.ExpDecay{}, retention.PatternAllZeros)
	if err != nil {
		t.Fatal(err)
	}
	store, err := NewBankStore(bank, ecc.DefaultClassifier())
	if err != nil {
		t.Fatal(err)
	}
	if store.Rows() != 4 {
		t.Fatalf("store rows %d", store.Rows())
	}
	res, err := store.PatrolRead(0, 0.064)
	if err != nil || res.Outcome != ecc.OK {
		t.Fatalf("healthy row: %+v err=%v", res, err)
	}
	res, err = store.PatrolRead(1, 0.064)
	if err != nil || res.Outcome != ecc.Corrected {
		t.Fatalf("sagging row: %+v err=%v", res, err)
	}
	res, err = store.PatrolRead(2, 0.064)
	if err != nil || res.Outcome != ecc.Uncorrectable {
		t.Fatalf("dead row: %+v err=%v", res, err)
	}
	// The patrol read restored row 1; an immediate re-read is clean.
	res, err = store.PatrolRead(1, 0.0641)
	if err != nil || res.Outcome != ecc.OK {
		t.Fatalf("restored row: %+v err=%v", res, err)
	}
	if err := store.Retire(2); err != nil {
		t.Fatal(err)
	}
	if got := bank.Retired(); !reflect.DeepEqual(got, []int{2}) {
		t.Fatalf("bank retired %v, want [2]", got)
	}
	if _, err := NewBankStore(nil, ecc.DefaultClassifier()); err == nil {
		t.Fatal("NewBankStore accepted a nil bank")
	}
	if _, err := NewBankStore(bank, ecc.ChargeClassifier{SenseLimit: -1}); err == nil {
		t.Fatal("NewBankStore accepted an invalid classifier")
	}
}
