package dram

import (
	"testing"

	"vrldram/internal/ecc"
	"vrldram/internal/retention"
)

func newDataBank(t *testing.T) *DataBank {
	t.Helper()
	db, err := NewDataBank(smallProfile(t), retention.ExpDecay{}, retention.PatternAllZeros)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestDataBankCleanRoundTrip(t *testing.T) {
	db := newDataBank(t)
	const word = 0xDEADBEEFCAFEF00D
	if err := db.WriteWord(5, 0.001, word); err != nil {
		t.Fatal(err)
	}
	// Read well within the retention time.
	res, err := db.ReadWord(5, 0.010)
	if err != nil {
		t.Fatal(err)
	}
	if res.Data != word || res.Result != ecc.OK {
		t.Fatalf("clean read: %x, %v", res.Data, res.Result)
	}
}

func TestDataBankCorrectableSag(t *testing.T) {
	db := newDataBank(t)
	row := 0 // true retention 128 ms
	const word = 0x0123456789ABCDEF
	if err := db.WriteWord(row, 0, word); err != nil {
		t.Fatal(err)
	}
	// Read in the correctable window: charge in [0.35, 0.5) means
	// t in (tret, tret*log2(1/0.35)) ~ (128ms, 194ms).
	res, err := db.ReadWord(row, 0.150)
	if err != nil {
		t.Fatal(err)
	}
	if res.Result != ecc.Corrected {
		t.Fatalf("want corrected read, got %v (charge %v)", res.Result, res.Charge)
	}
	if res.Data != word {
		t.Fatalf("ECC failed to repair: %x != %x", res.Data, word)
	}
	// The read scrubbed the row: an immediate re-read is clean.
	res2, err := db.ReadWord(row, 0.151)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Result != ecc.OK || res2.Data != word {
		t.Fatalf("scrub failed: %v %x", res2.Result, res2.Data)
	}
}

func TestDataBankUncorrectableSag(t *testing.T) {
	db := newDataBank(t)
	row := 0
	const word = 0x1122334455667788
	if err := db.WriteWord(row, 0, word); err != nil {
		t.Fatal(err)
	}
	// Deep sag: charge below 0.35 (t > tret*log2(1/0.35) ~ 194ms).
	res, err := db.ReadWord(row, 0.250)
	if err != nil {
		t.Fatal(err)
	}
	if res.Result != ecc.Uncorrectable {
		t.Fatalf("want uncorrectable, got %v (charge %v)", res.Result, res.Charge)
	}
}

func TestDataBankRowBounds(t *testing.T) {
	db := newDataBank(t)
	if err := db.WriteWord(-1, 0, 0); err == nil {
		t.Fatal("negative row must be rejected")
	}
	if _, err := db.ReadWord(1000, 0); err == nil {
		t.Fatal("out-of-range row must be rejected")
	}
}

func TestDataBankRefreshKeepsDataReadable(t *testing.T) {
	db := newDataBank(t)
	row := 0 // 128 ms retention
	const word = 0xA5A5A5A5A5A5A5A5
	if err := db.WriteWord(row, 0, word); err != nil {
		t.Fatal(err)
	}
	// Refresh on the 64 ms schedule, then read at 200 ms: without the
	// refreshes this read would be uncorrectable (see the test above).
	for _, rt := range []float64{0.064, 0.128, 0.192} {
		if _, err := db.Refresh(row, rt, 0.999); err != nil {
			t.Fatal(err)
		}
	}
	res, err := db.ReadWord(row, 0.200)
	if err != nil {
		t.Fatal(err)
	}
	if res.Result != ecc.OK || res.Data != word {
		t.Fatalf("refreshed row unreadable: %v %x", res.Result, res.Data)
	}
}

func TestDataBankWeakBitsSpread(t *testing.T) {
	db := newDataBank(t)
	seen := map[int]bool{}
	for _, b := range db.weakBit {
		if b < 0 || b >= ecc.DataBits {
			t.Fatalf("weak bit %d out of range", b)
		}
		seen[b] = true
	}
	if len(seen) < 2 {
		t.Fatal("weak bits should vary across rows")
	}
}
