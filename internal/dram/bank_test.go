package dram

import (
	"math"
	"testing"

	"vrldram/internal/device"
	"vrldram/internal/retention"
)

func smallProfile(t *testing.T) *retention.BankProfile {
	t.Helper()
	geom := device.BankGeometry{Rows: 16, Cols: 4}
	p := &retention.BankProfile{
		Geom:     geom,
		True:     make([]float64, geom.Rows),
		Profiled: make([]float64, geom.Rows),
	}
	for r := range p.True {
		p.True[r] = 0.064 * float64(r+2) // 128 ms .. ~1.1 s
		p.Profiled[r] = retention.ProfileRetention(p.True[r])
	}
	return p
}

func newBank(t *testing.T) *Bank {
	t.Helper()
	b, err := NewBank(smallProfile(t), retention.ExpDecay{}, retention.PatternAllZeros)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestNewBankValidation(t *testing.T) {
	if _, err := NewBank(nil, retention.ExpDecay{}, retention.PatternAllZeros); err == nil {
		t.Fatal("nil profile must be rejected")
	}
	p := smallProfile(t)
	p.True = p.True[:3]
	if _, err := NewBank(p, retention.ExpDecay{}, retention.PatternAllZeros); err == nil {
		t.Fatal("mismatched profile size must be rejected")
	}
	// Nil decay defaults to exponential.
	b, err := NewBank(smallProfile(t), nil, retention.PatternAllZeros)
	if err != nil || b.Decay.Name() != "exponential" {
		t.Fatalf("nil decay should default: %v, %v", b, err)
	}
}

func TestChargeDecaysPerModel(t *testing.T) {
	b := newBank(t)
	row := 5
	tret := b.Profile.True[row] // all-zeros pattern: factor 1
	v, err := b.ChargeAt(row, tret)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-0.5) > 1e-12 {
		t.Fatalf("charge at the retention time = %v, want 0.5", v)
	}
	v0, err := b.ChargeAt(row, 0)
	if err != nil || v0 != 1 {
		t.Fatalf("initial charge = %v, %v", v0, err)
	}
}

func TestPatternScalesDecay(t *testing.T) {
	pAlt, err := NewBank(smallProfile(t), retention.ExpDecay{}, retention.PatternAlternating)
	if err != nil {
		t.Fatal(err)
	}
	pZero, err := NewBank(smallProfile(t), retention.ExpDecay{}, retention.PatternAllZeros)
	if err != nil {
		t.Fatal(err)
	}
	tEval := 0.1
	vAlt, _ := pAlt.ChargeAt(3, tEval)
	vZero, _ := pZero.ChargeAt(3, tEval)
	if vAlt >= vZero {
		t.Fatalf("worst-case pattern should leak faster: %v vs %v", vAlt, vZero)
	}
}

func TestChargeAtErrors(t *testing.T) {
	b := newBank(t)
	if _, err := b.ChargeAt(-1, 0); err == nil {
		t.Fatal("negative row must error")
	}
	if _, err := b.ChargeAt(99, 0); err == nil {
		t.Fatal("out-of-range row must error")
	}
	if _, err := b.Refresh(2, 0.05, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := b.ChargeAt(2, 0.01); err == nil {
		t.Fatal("time before last restore must error")
	}
}

func TestRefreshRestores(t *testing.T) {
	b := newBank(t)
	row, at := 4, 0.05
	before, _ := b.ChargeAt(row, at)
	res, err := b.Refresh(row, at, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.ChargeBefore-before) > 1e-12 {
		t.Fatalf("recorded before = %v, want %v", res.ChargeBefore, before)
	}
	want := before + (1-before)*0.9
	if math.Abs(res.ChargeAfter-want) > 1e-12 {
		t.Fatalf("after = %v, want %v", res.ChargeAfter, want)
	}
	if math.Abs(res.ChargeRestored-(want-before)) > 1e-12 {
		t.Fatal("restored delta inconsistent")
	}
	now, _ := b.ChargeAt(row, at)
	if math.Abs(now-want) > 1e-12 {
		t.Fatal("bank state not updated")
	}
	if _, err := b.Refresh(row, at, 1.5); err == nil {
		t.Fatal("alpha > 1 must be rejected")
	}
}

func TestAccessFullyRestores(t *testing.T) {
	b := newBank(t)
	res, err := b.Access(3, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if res.ChargeAfter != 1 {
		t.Fatalf("access restores to %v, want 1", res.ChargeAfter)
	}
	v, _ := b.ChargeAt(3, 0.05)
	if v != 1 {
		t.Fatal("state not updated")
	}
}

func TestViolationRecordedOnLateSense(t *testing.T) {
	b := newBank(t)
	row := 0 // true retention 128 ms
	late := b.Profile.True[row] * 1.5
	if _, err := b.Refresh(row, late, 1); err != nil {
		t.Fatal(err)
	}
	viol := b.Violations()
	if len(viol) != 1 {
		t.Fatalf("got %d violations, want 1", len(viol))
	}
	if viol[0].Row != row || viol[0].Charge >= retention.SenseLimit {
		t.Fatalf("violation record wrong: %+v", viol[0])
	}
	// A timely refresh records nothing further.
	if _, err := b.Refresh(1, 0.01, 1); err != nil {
		t.Fatal(err)
	}
	if len(b.Violations()) != 1 {
		t.Fatal("timely refresh must not record a violation")
	}
}

func TestCheckAll(t *testing.T) {
	b := newBank(t)
	// At 100 ms, row 0 (128 ms retention) is still fine; at 200 ms it is not.
	bad, err := b.CheckAll(0.1)
	if err != nil {
		t.Fatal(err)
	}
	if bad != 0 {
		t.Fatalf("unexpected failures at 100 ms: %d", bad)
	}
	b2 := newBank(t)
	bad, err = b2.CheckAll(0.2)
	if err != nil {
		t.Fatal(err)
	}
	if bad == 0 {
		t.Fatal("row 0 must have failed by 200 ms")
	}
	if len(b2.Violations()) != bad {
		t.Fatal("CheckAll must record its failures")
	}
}

func TestRepeatedRefreshKeepsChargeUp(t *testing.T) {
	b := newBank(t)
	row := 0
	period := 0.064
	for k := 1; k <= 20; k++ {
		if _, err := b.Refresh(row, float64(k)*period, 0.999); err != nil {
			t.Fatal(err)
		}
	}
	if len(b.Violations()) != 0 {
		t.Fatalf("violations under timely full refreshes: %d", len(b.Violations()))
	}
	v, _ := b.ChargeAt(row, 20*period)
	if v < 0.99 {
		t.Fatalf("charge after steady refreshing = %v", v)
	}
}

func TestBankWithVRT(t *testing.T) {
	b := newBank(t)
	v := retention.DefaultVRT()
	if err := b.SetVRT(&v); err != nil {
		t.Fatal(err)
	}
	// Charge still decays and stays in [0, 1].
	for _, row := range []int{0, 7, 15} {
		c, err := b.ChargeAt(row, 0.05)
		if err != nil {
			t.Fatal(err)
		}
		if c <= 0 || c > 1 {
			t.Fatalf("row %d charge %v out of range", row, c)
		}
	}
	bad := retention.VRT{AffectedFrac: 2}
	if err := b.SetVRT(&bad); err == nil {
		t.Fatal("invalid VRT must be rejected")
	}
	if err := b.SetVRT(nil); err != nil || b.VRT != nil {
		t.Fatal("detaching VRT failed")
	}
}
