// Streaming fast-forward kernel over the bank's structure-of-arrays state.
//
// The batched kernels in batch.go amortize per-event overhead across one
// gathered bucket, but the simulator still pays a pop/gather/apply round
// trip per bucket and a scheduler interface call per event. In a quiescent
// steady state - no trace records, no scrub ticks, no checkpoint boundary,
// schedule stable - every event is "sense, restore, re-arm at t+period",
// and the event queue's period lanes already hold the events in sorted
// order. RefreshStream exploits that: it merges the lanes directly, fusing
// decay, sensing, op selection (from the scheduler's own counter columns),
// restore, accounting, and the re-push into one pass, with each lane acting
// as a rotor - the head event pops, its successor at t+period appends to
// the same lane's tail, so a lane can lap itself arbitrarily many times
// within one horizon and the whole quiescent span costs one kernel call.
//
// Bit-identity contract: the kernel consumes events in exactly the global
// (time, row) order the scalar runner would, and every per-event float
// operation - decay factor, sense compare, restore expression, the
// ChargeRestored accumulation order - is expression-for-expression the
// scalar path's. Anything it cannot reproduce exactly (a re-push that the
// lane queue would spill to the mixed intake, a period with no lane) makes
// it stop *before* that event with Bailed set, state fully consistent, so
// the caller can handle one event scalar-style and resume.
package dram

import (
	"fmt"
	"math"

	"vrldram/internal/retention"
)

// StreamEvent is one scheduled refresh: the queue element shared between
// internal/sim's period lanes and this kernel (sim aliases its event type to
// it, so lanes hand over with zero copying).
type StreamEvent struct {
	T   float64
	Row int
}

// RefreshLane is one period-keyed FIFO of scheduled refreshes. The
// unconsumed tail Events[Head:] is sorted by (time, row); Delta is the
// re-push period the lane is keyed by.
type RefreshLane struct {
	Delta  float64
	Events []StreamEvent
	Head   int
}

// StreamConfig is the scheduler side of a fast-forward window: the live
// decision columns (see core.StreamView; the slices alias scheduler state,
// and the kernel's RCount writes are the scheduler's own counter updates).
type StreamConfig struct {
	Period  float64   // shared refresh period when Periods is nil
	Periods []float64 // per-row refresh periods
	RCount  []int     // per-row partial-refresh counters; nil = always full
	MPRSF   []int     // per-row MPRSF (required when RCount is set)

	AlphaFull, AlphaPartial float64

	CyclesFull, CyclesPartial int
}

// StreamResult reports one RefreshStream window.
type StreamResult struct {
	Events     int     // events consumed
	Fulls      int64   // full refreshes among them
	Partials   int64   // partial refreshes among them
	LastTime   float64 // time of the last consumed event (valid when Events > 0)
	LastCycles int     // busy cycles of the last consumed event
	// ChargeRestored is the caller's running accumulator after folding in
	// every consumed event's delta, in global event order - the threading
	// that keeps the non-associative float sum bit-identical to the scalar
	// runner's.
	ChargeRestored float64
	// Bailed reports the kernel stopped before an event it could not handle
	// exactly (cross-lane re-push with no matching lane, or a re-push that
	// would break the target lane's FIFO order and must spill). The offending
	// event is still queued; process it scalar-style and resume.
	Bailed bool
}

// streamRow is one row's gathered hot state: exactly 64 bytes, so the whole
// steady-state per-event pipeline touches a single cache line per row.
// dtA/fA and dtB/fB are a two-entry MRU memo of the decay factor keyed by
// the elapsed interval (overflow lives in streamExt); rcount/mprsf are the
// scheduler's partial-refresh counters packed in so op selection costs no
// second random access. Keying the memo on dt is valid because the gather
// invalidates it whenever the row's retention changes (see streamGather),
// so identical dt implies the identical Exp2 argument and a hit can never
// change a result. The keys start as NaN (never equal), so a zero dt cannot
// false-hit.
type streamRow struct {
	charge float64
	lastT  float64
	dtA    float64
	fA     float64
	dtB    float64
	fB     float64
	period float64
	rcount int32
	mprsf  int32
}

// streamPair is one pinned (interval, factor) memo entry.
type streamPair struct {
	dt, f float64
}

// streamExt is a row's overflow decay memo: up to 8 pinned (dt, f) pairs,
// consulted only when the in-line MRU pair misses. A steady row's dt walks
// through a handful of distinct rounding values of fl(t+p)-t (the set grows
// at each binade crossing of t), which cycles - and cycling is the
// pathological pattern for small MRU memos, evicting each entry just before
// its reuse. Pinned first-seen entries are immune to that: after one lap
// through the distinct set every factor is served from here without an
// Exp2. Slots fill first-come and are never evicted until the row's
// retention changes; pairs are interleaved so the earliest-pinned (and
// most-revisited) entries resolve on the first cache line.
type streamExt struct {
	p [8]streamPair
}

// StreamScratch holds the kernel's gathered hot-row state. It is owned by
// the caller (internal/sim keeps one per Scratch) rather than the bank, so
// the embedded decay memo survives across runs that share a Scratch but use
// fresh banks - a cold window pays one Exp2 per distinct (row, dt) pair,
// and a fleet of identically-profiled runs shares one warm memo. Sharing is
// safe across any mix of banks: factors depend only on (dt, tret), and the
// gather resets any row whose retention differs from the shadow copy taken
// when its memo entries were filled. The zero value is ready to use.
type StreamScratch struct {
	rows []streamRow
	ext  []streamExt
	tret []float64 // shadow of the bank's retention column keying the memo

	// Macro-kernel columns (see macro.go): per-window generated event
	// times, restore deltas, and op tags in lap-tiled layout, plus per-lane
	// row-order metadata and the duplicate-row detection epochs.
	times     []float64
	deltas    []float64
	ops       []byte
	mrows     []int32
	mnext     []float64
	mcnt      []int32
	seen      []int32
	seenEpoch int32
	macroViol []Violation
}

// streamState is the kernel's running accounting, passed by value through
// streamCore so every field lives in a register during the hot loop (a
// closure capture or address-of would pin them to the stack and turn each
// per-event counter bump into a load/store round trip).
type streamState struct {
	fulls      int64
	events     int
	lastTime   float64
	lastCycles int
	acc        float64
}

// streamCore exit statuses.
const (
	streamDone  = iota // no event below the horizon remains
	streamBail         // stopped before an order-breaking re-push
	streamCross        // stopped before a cross-lane re-push (wrapper commits it)
	streamFail         // validation error mid-stream
)

// RefreshStream consumes every event with time < horizon from the lanes in
// global (time, row) order, applying the full per-event refresh pipeline
// in-place and re-arming each row at t + period in its period's lane. acc
// is the caller's ChargeRestored accumulator, threaded through so the sum
// order matches the scalar runner exactly; sc carries the gathered row
// state between windows.
func (b *Bank) RefreshStream(sc *StreamScratch, lanes []RefreshLane, horizon float64, cfg *StreamConfig, acc float64) (StreamResult, error) {
	res := StreamResult{ChargeRestored: acc}
	if !(cfg.AlphaFull >= 0 && cfg.AlphaFull <= 1) {
		return res, fmt.Errorf("dram: restore alpha %g outside [0,1]", cfg.AlphaFull)
	}
	if cfg.RCount != nil && !(cfg.AlphaPartial >= 0 && cfg.AlphaPartial <= 1) {
		return res, fmt.Errorf("dram: restore alpha %g outside [0,1]", cfg.AlphaPartial)
	}
	nRows := b.Geom.Rows
	if cfg.Periods != nil && len(cfg.Periods) != nRows {
		return res, fmt.Errorf("dram: stream periods cover %d rows, bank has %d", len(cfg.Periods), nRows)
	}
	if cfg.RCount != nil && (len(cfg.RCount) != nRows || len(cfg.MPRSF) != nRows) {
		return res, fmt.Errorf("dram: stream counters cover %d/%d rows, bank has %d", len(cfg.RCount), len(cfg.MPRSF), nRows)
	}
	hot, err := b.streamGather(sc, cfg)
	if err != nil {
		return res, err
	}
	hasCnt := cfg.RCount != nil
	st := streamState{acc: acc}
	violations := b.violations
	var status, laneIdx int
	for {
		st, violations, status, laneIdx, err = streamCore(hot, sc.ext, sc.tret, b.retired,
			lanes, horizon, hasCnt, cfg.AlphaFull, cfg.AlphaPartial, cfg.CyclesFull, cfg.CyclesPartial,
			st, violations)
		if status != streamCross {
			break
		}
		// Cross-lane re-push: rare (a period changed between windows). Commit
		// one event through the generic path and re-enter the hot loop; kept
		// out of streamCore so its pointer plumbing cannot de-register the
		// hot loop's state.
		var bailed bool
		bailed, violations, err = b.streamCrossLane(hot, sc.ext, sc.tret, lanes, laneIdx, cfg, hasCnt, &st, violations)
		if bailed || err != nil {
			res.Bailed = bailed
			break
		}
	}
	// Scatter the mutated state back into the bank SoA (and the scheduler's
	// counter column) on every exit path.
	charge, lastT := b.charge, b.lastT
	for r := range hot {
		charge[r] = hot[r].charge
		lastT[r] = hot[r].lastT
	}
	if hasCnt {
		rcount := cfg.RCount
		for r := range hot {
			rcount[r] = int(hot[r].rcount)
		}
	}
	b.violations = violations
	res.Fulls, res.Partials = st.fulls, int64(st.events)-st.fulls
	res.Events = st.events
	res.LastTime, res.LastCycles = st.lastTime, st.lastCycles
	res.ChargeRestored = st.acc
	if status == streamBail {
		res.Bailed = true
	}
	return res, err
}

// streamCore is the closure-free hot loop: it consumes lane runs until the
// horizon, an unhandleable event, or an error, with all accounting in
// by-value state. It returns the lane index alongside streamCross so the
// wrapper can commit the offending head event and re-enter.
func streamCore(hot []streamRow, ext []streamExt, tretCol []float64, retired []bool,
	lanes []RefreshLane, horizon float64, hasCnt bool,
	alphaF, alphaP float64, cycF, cycP int,
	st streamState, violations []Violation) (streamState, []Violation, int, int, error) {
	fulls := st.fulls
	events := st.events
	lastTime := st.lastTime
	lastCycles := st.lastCycles
	acc := st.acc
	status, retLane := streamDone, 0
	var retErr error

	for {
		// Locate the lane holding the global minimum below the horizon, and
		// the run limit: the earliest other-lane head, before which the best
		// lane stays the minimum (same tie discipline as the batch queue's
		// k-way merge).
		best := -1
		var bestE StreamEvent
		limT, limRow := horizon, -1
		for i := range lanes {
			l := &lanes[i]
			if l.Head >= len(l.Events) {
				continue
			}
			e := l.Events[l.Head]
			if best < 0 || e.T < bestE.T || (e.T == bestE.T && e.Row < bestE.Row) {
				if best >= 0 {
					// The displaced best becomes limit material.
					if bestE.T < limT || (bestE.T == limT && limRow >= 0 && bestE.Row < limRow) {
						limT, limRow = bestE.T, bestE.Row
					}
				}
				best, bestE = i, e
			} else if e.T < limT || (e.T == limT && limRow >= 0 && e.Row < limRow) {
				limT, limRow = e.T, e.Row
			}
		}
		if best < 0 || bestE.T >= horizon {
			goto done
		}
		// Consume the run with the lane's state hoisted into locals (written
		// back at every run exit). The lane tail is tracked in registers for
		// the re-push order check: it is either the last pre-existing event
		// or the re-push appended by the previous iteration.
		l := &lanes[best]
		laneDelta := l.Delta
		evs := l.Events
		head := l.Head
		tailT, tailRow := evs[len(evs)-1].T, evs[len(evs)-1].Row
		for head < len(evs) {
			ev := evs[head]
			t := ev.T
			if t >= horizon || t > limT || (t == limT && limRow >= 0 && ev.Row > limRow) {
				break
			}
			row := ev.Row
			if uint(row) >= uint(len(hot)) {
				l.Events, l.Head = evs, head
				status, retLane = streamFail, best
				retErr = fmt.Errorf("dram: row %d out of range [0,%d)", row, len(hot))
				goto done
			}
			h := &hot[row]
			dt := t - h.lastT
			if dt < 0 {
				l.Events, l.Head = evs, head
				status, retLane = streamFail, best
				retErr = fmt.Errorf("dram: time went backwards for row %d: %.6g < %.6g", row, t, h.lastT)
				goto done
			}
			// Decay: ExpDecay.Factor's exact guards and expression behind
			// the in-line MRU pair, then the pinned overflow memo.
			var f float64
			if dt == h.dtA {
				f = h.fA
			} else {
				if dt == h.dtB {
					f = h.fB
				} else {
					x := &ext[row]
					hit := false
					for i := range x.p {
						if x.p[i].dt == dt {
							f = x.p[i].f
							hit = true
							break
						}
					}
					if !hit {
						if dt == 0 {
							f = 1
						} else if tretCol[row] <= 0 {
							f = 0
						} else {
							f = math.Exp2(-dt / tretCol[row])
							}
						for i := range x.p {
							if x.p[i].dt != x.p[i].dt { // first NaN (free) slot pins it
								x.p[i] = streamPair{dt: dt, f: f}
								break
							}
						}
					}
				}
				h.dtB, h.fB = h.dtA, h.fA
				h.dtA, h.fA = dt, f
			}
			v := h.charge * f
			// Re-arm feasibility - checked before any mutation so a bail
			// leaves the event untouched for the wrapper's fallback.
			nt := t + h.period
			if h.period != laneDelta {
				l.Events, l.Head = evs, head
				status, retLane = streamCross, best
				goto done
			}
			if nt < tailT || (nt == tailT && tailRow >= row) {
				// Would break the lane's FIFO order; the queue would spill
				// this to the mixed intake, which the kernel cannot merge -
				// hand the event back.
				l.Events, l.Head = evs, head
				status, retLane = streamBail, best
				goto done
			}
			// Commit: sense, counter update, restore, accounting, re-arm.
			// The full/partial selection is written as conditional moves over
			// a partial-path default so the data-dependent op mix does not
			// turn into a mispredicting branch; partials fall out as
			// events - fulls at the wrapper's scatter.
			if v < retention.SenseLimit && !retired[row] {
				violations = append(violations, Violation{Row: row, Time: t, Charge: v})
			}
			full := !hasCnt || h.rcount == h.mprsf
			alpha := alphaP
			cyc := cycP
			nrc := h.rcount + 1
			var isF int64
			if full {
				alpha, cyc, nrc = alphaF, cycF, 0
				isF = 1
			}
			h.rcount = nrc
			fulls += isF
			lastCycles = cyc
			after := v + (1-v)*alpha
			acc += after - v
			h.charge = after
			h.lastT = t
			events++
			lastTime = t
			head++
			if len(evs) == cap(evs) && head > 0 {
				// Reclaim the consumed prefix in place before appending, so a
				// rotor lane reuses its buffer instead of growing per lap.
				n := copy(evs, evs[head:])
				evs = evs[:n]
				head = 0
			}
			evs = append(evs, StreamEvent{T: nt, Row: row})
			tailT, tailRow = nt, row
		}
		l.Events, l.Head = evs, head
	}

done:
	return streamState{fulls: fulls, events: events, lastTime: lastTime, lastCycles: lastCycles, acc: acc},
		violations, status, retLane, retErr
}

// streamGather syncs the gathered hot-row state from the bank SoA columns
// and the scheduler config. Memo entries persist as long as the row's tret
// is unchanged; a tret change (different bank profile sharing the scratch,
// a pattern rescale) resets that row's MRU keys and overflow slots to NaN,
// which never compare equal.
func (b *Bank) streamGather(sc *StreamScratch, cfg *StreamConfig) ([]streamRow, error) {
	nRows := b.Geom.Rows
	sc.ensureMemo(nRows)
	if len(sc.rows) != nRows {
		sc.rows = make([]streamRow, nRows)
		nan := math.NaN()
		for r := range sc.rows {
			sc.rows[r].dtA, sc.rows[r].dtB = nan, nan
		}
	}
	hot := sc.rows
	charge, lastT := b.charge, b.lastT
	tret := b.retentions()
	for r := range hot {
		h := &hot[r]
		if sc.tret[r] != tret[r] {
			sc.tret[r] = tret[r]
			nan := math.NaN()
			h.dtA, h.dtB = nan, nan
			for i := range sc.ext[r].p {
				sc.ext[r].p[i].dt = nan
			}
		}
		h.charge, h.lastT = charge[r], lastT[r]
		if cfg.Periods != nil {
			h.period = cfg.Periods[r]
		} else {
			h.period = cfg.Period
		}
	}
	if cfg.RCount == nil {
		return hot, nil
	}
	for r := range hot {
		rc, mp := cfg.RCount[r], cfg.MPRSF[r]
		if int64(int32(rc)) != int64(rc) || int64(int32(mp)) != int64(mp) {
			return nil, fmt.Errorf("dram: stream counter for row %d overflows the packed column (%d/%d)", r, rc, mp)
		}
		hot[r].rcount, hot[r].mprsf = int32(rc), int32(mp)
	}
	return hot, nil
}

// streamCrossLane commits the head event of lanes[laneIdx], whose re-push
// period no longer matches the lane it sits in (its bin changed between
// windows): the re-push must land in the lane keyed by its new period, which
// may change the merge limit, so streamCore hands it up rather than
// continuing the run. Returns bailed=true without committing when no such
// lane exists or the append would violate its order. The decay pipeline here
// mirrors streamCore's exactly, memo included.
func (b *Bank) streamCrossLane(hot []streamRow, ext []streamExt, tretCol []float64,
	lanes []RefreshLane, laneIdx int, cfg *StreamConfig, hasCnt bool,
	st *streamState, violations []Violation) (bool, []Violation, error) {
	l := &lanes[laneIdx]
	ev := l.Events[l.Head]
	row := ev.Row
	h := &hot[row]
	t := ev.T
	dt := t - h.lastT
	if dt < 0 {
		return false, violations, fmt.Errorf("dram: time went backwards for row %d: %.6g < %.6g", row, t, h.lastT)
	}
	var f float64
	if dt == h.dtA {
		f = h.fA
	} else {
		if dt == h.dtB {
			f = h.fB
		} else {
			x := &ext[row]
			hit := false
			for i := range x.p {
				if x.p[i].dt == dt {
					f = x.p[i].f
					hit = true
					break
				}
			}
			if !hit {
				if dt == 0 {
					f = 1
				} else if tretCol[row] <= 0 {
					f = 0
				} else {
					f = math.Exp2(-dt / tretCol[row])
				}
				for i := range x.p {
					if x.p[i].dt != x.p[i].dt {
						x.p[i] = streamPair{dt: dt, f: f}
						break
					}
				}
			}
		}
		h.dtB, h.fB = h.dtA, h.fA
		h.dtA, h.fA = dt, f
	}
	v := h.charge * f
	full := !hasCnt || h.rcount == h.mprsf
	nt := t + h.period
	var tl *RefreshLane
	for i := range lanes {
		if lanes[i].Delta == h.period {
			tl = &lanes[i]
			break
		}
	}
	if tl == nil {
		return true, violations, nil
	}
	if tl.Head < len(tl.Events) {
		if last := tl.Events[len(tl.Events)-1]; nt < last.T || (nt == last.T && last.Row >= row) {
			return true, violations, nil
		}
	}
	if v < retention.SenseLimit && !b.retired[row] {
		violations = append(violations, Violation{Row: row, Time: t, Charge: v})
	}
	if full {
		h.rcount = 0
		st.fulls++
		st.lastCycles = cfg.CyclesFull
		after := v + (1-v)*cfg.AlphaFull
		st.acc += after - v
		h.charge = after
	} else {
		h.rcount++
		st.lastCycles = cfg.CyclesPartial
		after := v + (1-v)*cfg.AlphaPartial
		st.acc += after - v
		h.charge = after
	}
	h.lastT = t
	st.events++
	st.lastTime = t
	l.Head++
	if len(tl.Events) == cap(tl.Events) && tl.Head > 0 {
		n := copy(tl.Events, tl.Events[tl.Head:])
		tl.Events = tl.Events[:n]
		tl.Head = 0
	}
	tl.Events = append(tl.Events, StreamEvent{T: nt, Row: row})
	return false, violations, nil
}

// MinLastRestore returns the earliest last-restore time across all rows: the
// left edge of the span a fast-forward window's decay intervals can reach
// back to, which is what a scenario modulator's nominal-window check must
// cover.
func (b *Bank) MinLastRestore() float64 {
	min := math.Inf(1)
	for _, t := range b.lastT {
		if t < min {
			min = t
		}
	}
	return min
}

// Streamable reports whether the bank's decay configuration is one the
// stream kernel reproduces exactly: the plain exponential law with no VRT
// process. A scenario modulator is handled separately - see SteadyModulator.
func (b *Bank) Streamable() bool {
	_, exp := b.Decay.(retention.ExpDecay)
	return exp && b.VRT == nil
}

// ActiveModulator returns the attached scenario modulator, if any.
func (b *Bank) ActiveModulator() Modulator { return b.mod }

// SteadyModulator is an optional Modulator capability the fast-forward
// backend keys on: NominalUntil(from) returns the end of the nominal window
// containing from - the largest T such that over every [t0, t1] inside
// [from, T) the modulation is exactly the identity, DecayFactor(row, tret,
// t0, t1, base) == base.Factor(t1-t0, tret) bit for bit (every scale is 1
// AND no change-point splits the segment walk, since even a scale-1 split
// changes the float product). A return <= from means "not nominal now".
// internal/scenario's Env implements it.
type SteadyModulator interface {
	Modulator
	NominalUntil(from float64) float64
}

// ensureMemo sizes the shared decay-memo columns (pinned overflow entries
// and the retention shadow that keys them) for the bank geometry. Both
// kernels call it, so whichever runs first does not clobber the other's
// warm entries.
func (sc *StreamScratch) ensureMemo(nRows int) {
	if len(sc.ext) == nRows {
		return
	}
	sc.ext = make([]streamExt, nRows)
	sc.tret = make([]float64, nRows)
	nan := math.NaN()
	for r := range sc.ext {
		sc.tret[r] = nan
		for i := range sc.ext[r].p {
			sc.ext[r].p[i].dt = nan
		}
	}
}
