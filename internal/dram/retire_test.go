package dram

import (
	"reflect"
	"testing"

	"vrldram/internal/device"
	"vrldram/internal/retention"
)

// TestRetire covers the spare-row quarantine contract: a retired row's
// sub-limit senses stop counting as violations (its data lives on a spare),
// CheckAll skips it, and retirement round-trips through State/SetState.
func TestRetire(t *testing.T) {
	profile := &retention.BankProfile{
		Geom: device.BankGeometry{Rows: 4, Cols: 32},
		// Row 1 decays to ~1e-4 of its charge within 64 ms; the others hold.
		True:     []float64{10, 0.005, 10, 10},
		Profiled: []float64{10, 0.005, 10, 10},
	}
	b, err := NewBank(profile, retention.ExpDecay{}, retention.PatternAllZeros)
	if err != nil {
		t.Fatal(err)
	}

	// Unretired: the dead row violates on sense.
	if _, err := b.Refresh(1, 0.064, 1); err != nil {
		t.Fatal(err)
	}
	if n := len(b.Violations()); n != 1 {
		t.Fatalf("violations before retirement: %d, want 1", n)
	}

	if err := b.Retire(1); err != nil {
		t.Fatal(err)
	}
	if got := b.Retired(); !reflect.DeepEqual(got, []int{1}) {
		t.Fatalf("Retired() = %v, want [1]", got)
	}

	// Retired: the same sag no longer books violations, from Refresh, Access,
	// or the end-of-run sweep.
	if _, err := b.Refresh(1, 0.128, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Access(1, 0.192); err != nil {
		t.Fatal(err)
	}
	bad, err := b.CheckAll(0.3)
	if err != nil {
		t.Fatal(err)
	}
	if bad != 0 {
		t.Fatalf("CheckAll counted %d bad rows with the dead row retired", bad)
	}
	if n := len(b.Violations()); n != 1 {
		t.Fatalf("violations after retirement: %d, want still 1", n)
	}

	// Bounds checking.
	if err := b.Retire(-1); err == nil {
		t.Fatal("Retire(-1) accepted")
	}
	if err := b.Retire(4); err == nil {
		t.Fatal("Retire(4) accepted")
	}

	// State round trip preserves retirement; SetState validates rows.
	st := b.State()
	if !reflect.DeepEqual(st.Retired, []int{1}) {
		t.Fatalf("state retired %v, want [1]", st.Retired)
	}
	b2, err := NewBank(profile, retention.ExpDecay{}, retention.PatternAllZeros)
	if err != nil {
		t.Fatal(err)
	}
	if err := b2.SetState(st); err != nil {
		t.Fatal(err)
	}
	if got := b2.Retired(); !reflect.DeepEqual(got, []int{1}) {
		t.Fatalf("retirement lost in SetState round trip: %v", got)
	}
	// SetState replaces, not merges: restoring a no-retirement state clears.
	if err := b2.Retire(2); err != nil {
		t.Fatal(err)
	}
	if err := b2.SetState(st); err != nil {
		t.Fatal(err)
	}
	if got := b2.Retired(); !reflect.DeepEqual(got, []int{1}) {
		t.Fatalf("SetState merged instead of replacing: %v", got)
	}
	st.Retired = []int{99}
	if err := b2.SetState(st); err == nil {
		t.Fatal("SetState accepted an out-of-range retired row")
	}
}
