// Macro-step fast-forward kernel: whole-window columnar replay.
//
// RefreshStream (stream.go) replays the lane merge event by event, which
// costs one random cache-line access per event. RefreshMacro restructures
// the same quiescent window into row-major passes by exploiting what is
// actually order-dependent in the pipeline:
//
//   - A row's refresh times depend only on its first pending event and its
//     period - never on charge - so the whole window's event times can be
//     generated per row (pass A) and the global (time, row) order verified
//     afterwards against the generated columns alone.
//   - Per-row state (charge, lastT, rcount) evolves independently of other
//     rows, so the full charge pipeline can be replayed row-major (pass C),
//     with one random access per row instead of one per event.
//   - The only cross-row order dependencies are the non-associative
//     ChargeRestored sum, the violations append order, and the identity of
//     the globally last event. Pass C buffers each event's restore delta;
//     pass D re-walks the events in global (time, row) order - a cursor
//     merge over the generated lane columns - folding the deltas into the
//     accumulator in exactly the scalar runner's order. Violations are
//     rare: they are collected per row and sorted by (time, row), which
//     equals the global append order because the order is a strict total
//     order.
//
// Pass D verifies while it merges: every consumed event must be strictly
// greater than its predecessor in (time, row). With a strict total order a
// merge whose output is sorted IS the global sort, so the check both
// validates the lap-prefix layout assumptions and certifies bit-identity;
// if it ever fails, the kernel re-sorts the buffered events and replays the
// accumulation from the sorted copy - slower, still exact, no undo needed
// (per-row state committed in pass C is order-independent).
//
// Shapes the kernel cannot take - a row whose period left its lane, counts
// that are not a two-valued non-increasing prefix, duplicate rows in a lane
// - are detected in pass A before any mutation, returning Bailed with the
// queue untouched so the caller can fall back to RefreshStream.
package dram

import (
	"fmt"
	"math"
	"sort"

	"vrldram/internal/retention"
)

// macroMaxLanes bounds the cursor arrays; the queue's lane cap is far below.
const macroMaxLanes = 64

// macroLane is the per-lane plan pass A builds: where the lane's columns
// live in the shared scratch buffers and the lap-prefix shape of its window.
// Rows j < m carry cmax events, rows j >= m carry cmax-1 (or every row
// carries cmax when m == n); lap k therefore covers rows [0, n) for
// k < cmin and [0, m) for k in [cmin, cmax).
type macroLane struct {
	evBase  int // base index of the lane's tiled time/delta/op columns
	rowBase int // base index of the lane's row-order metadata
	n       int // rows in the lane
	stride  int // laps capacity per row
	cmax    int // events for prefix rows
	cmin    int // events for suffix rows (cmax or cmax-1)
	m       int // rows with cmax events (prefix length in lane order)
}

// macroIdx maps (row slot j, lap k) into the lane's tiled column: rows are
// tiled in blocks of 8 so one cache line holds eight neighbouring rows' same
// lap. Pass A/C walk one row's laps inside a block that stays cache-resident
// across the block's eight rows; pass D walks a lap across rows and reads
// eight consecutive values per line. Both directions stream.
func macroIdx(j, k, stride int) int {
	return (j>>3)*(stride<<3) + (k << 3) + (j & 7)
}

// macroCap returns the tiled column capacity for n rows at the given stride.
func macroCap(n, stride int) int {
	return ((n + 7) >> 3) * (stride << 3)
}

// macroCursor walks one lane's events in (time, row) order during pass D.
type macroCursor struct {
	j, k  int
	t     float64
	row   int
	alive bool
}

// RefreshMacro consumes every event with time < horizon from the lanes in
// global (time, row) order via columnar whole-window replay, equivalent to
// RefreshStream bit for bit. acc is the caller's ChargeRestored accumulator.
// On Bailed the queue and bank are untouched; the caller should fall back to
// RefreshStream, which handles ragged shapes incrementally.
func (b *Bank) RefreshMacro(sc *StreamScratch, lanes []RefreshLane, horizon float64, cfg *StreamConfig, acc float64) (StreamResult, error) {
	res := StreamResult{ChargeRestored: acc}
	if !(cfg.AlphaFull >= 0 && cfg.AlphaFull <= 1) {
		return res, fmt.Errorf("dram: restore alpha %g outside [0,1]", cfg.AlphaFull)
	}
	if cfg.RCount != nil && !(cfg.AlphaPartial >= 0 && cfg.AlphaPartial <= 1) {
		return res, fmt.Errorf("dram: restore alpha %g outside [0,1]", cfg.AlphaPartial)
	}
	nRows := b.Geom.Rows
	if cfg.Periods != nil && len(cfg.Periods) != nRows {
		return res, fmt.Errorf("dram: stream periods cover %d rows, bank has %d", len(cfg.Periods), nRows)
	}
	if cfg.RCount != nil && (len(cfg.RCount) != nRows || len(cfg.MPRSF) != nRows) {
		return res, fmt.Errorf("dram: stream counters cover %d/%d rows, bank has %d", len(cfg.RCount), len(cfg.MPRSF), nRows)
	}
	if len(lanes) > macroMaxLanes {
		res.Bailed = true
		return res, nil
	}
	sc.macroEnsure(nRows)

	// Pass A: per lane, generate every row's event times below the horizon
	// and verify the shape. Nothing is mutated until every lane passes.
	var plan [macroMaxLanes]macroLane
	evTotal, rowTotal := 0, 0
	sc.seenEpoch++
	epoch := sc.seenEpoch
	for li := range lanes {
		l := &lanes[li]
		n := len(l.Events) - l.Head
		pl := &plan[li]
		*pl = macroLane{evBase: evTotal, rowBase: rowTotal, n: n}
		if n == 0 {
			continue
		}
		p := l.Delta
		if !(p > 0) {
			res.Bailed = true
			return res, nil
		}
		// Bound the per-row lap count from the lane's earliest event so the
		// columns can be sized before the counting walk.
		stride := ffLaps(l.Events[l.Head].T, p, horizon) + 1
		pl.stride = stride
		need := evTotal + macroCap(n, stride)
		if cap(sc.times) < need {
			grown := make([]float64, need+need/4)
			copy(grown, sc.times[:evTotal])
			sc.times = grown
		}
		sc.times = sc.times[:cap(sc.times)]
		if cap(sc.mrows) < rowTotal+n {
			grownR := make([]int32, rowTotal+n+nRows)
			copy(grownR, sc.mrows[:rowTotal])
			sc.mrows = grownR
			grownN := make([]float64, cap(grownR))
			copy(grownN, sc.mnext[:rowTotal])
			sc.mnext = grownN
			grownC := make([]int32, cap(grownR))
			copy(grownC, sc.mcnt[:rowTotal])
			sc.mcnt = grownC
		}
		sc.mrows = sc.mrows[:cap(sc.mrows)]
		sc.mnext = sc.mnext[:cap(sc.mnext)]
		sc.mcnt = sc.mcnt[:cap(sc.mcnt)]
		for j := 0; j < n; j++ {
			ev := l.Events[l.Head+j]
			row := ev.Row
			if uint(row) >= uint(nRows) {
				return res, fmt.Errorf("dram: row %d out of range [0,%d)", row, nRows)
			}
			if sc.seen[row] == epoch {
				res.Bailed = true // row queued twice: not a steady shape
				return res, nil
			}
			sc.seen[row] = epoch
			rp := cfg.Period
			if cfg.Periods != nil {
				rp = cfg.Periods[row]
			}
			if rp != p {
				res.Bailed = true // period left the lane: cross-lane re-push
				return res, nil
			}
			// Count this row's events below the horizon by the same repeated
			// addition the replay performs (a multiplied estimate can land on
			// the other side of the horizon); times are not stored here -
			// pass C regenerates them while it replays, so the window's
			// events cross the cache once less.
			t := ev.T
			cnt := 0
			for t < horizon && cnt < stride {
				t += p
				cnt++
			}
			if cnt >= stride && t < horizon {
				res.Bailed = true // capacity estimate violated; stay safe
				return res, nil
			}
			// Counts must be non-increasing along the lane's sorted order
			// and span at most two adjacent values - the lap-prefix shape
			// pass D's cursors rely on.
			switch {
			case j == 0:
				pl.cmax, pl.cmin, pl.m = cnt, cnt, n
			case cnt == pl.cmin:
				// still on the current value
			case cnt == pl.cmin-1 && pl.cmin == pl.cmax:
				pl.cmin = cnt // the single allowed drop
				pl.m = j
			default:
				res.Bailed = true
				return res, nil
			}
			sc.mrows[rowTotal+j] = int32(row)
			sc.mnext[rowTotal+j] = t
			sc.mcnt[rowTotal+j] = int32(cnt)
		}
		evTotal += macroCap(n, stride)
		rowTotal += n
	}

	// Size the delta/op columns to match the time columns.
	if cap(sc.deltas) < evTotal {
		sc.deltas = make([]float64, evTotal+evTotal/4)
	}
	sc.deltas = sc.deltas[:cap(sc.deltas)]
	if cap(sc.ops) < evTotal {
		sc.ops = make([]byte, evTotal+evTotal/4)
	}
	sc.ops = sc.ops[:cap(sc.ops)]

	// Pass C: row-major replay of the charge pipeline, committing per-row
	// state directly to the bank columns and buffering each event's restore
	// delta and op for pass D. From here on state is mutated; errors below
	// mirror the scalar path's (partial progress, same message).
	sc.macroViol = sc.macroViol[:0]
	var fulls int64
	events := 0
	charge, lastT := b.charge, b.lastT
	tretCol := b.retentions()
	retired := b.retired
	rcount, mprsf := cfg.RCount, cfg.MPRSF
	hasCnt := rcount != nil
	alphaF, alphaP := cfg.AlphaFull, cfg.AlphaPartial
	ext := sc.ext
	shadow := sc.tret
	times, deltas, ops := sc.times, sc.deltas, sc.ops
	mrows, mcnt := sc.mrows, sc.mcnt
	for li := range lanes {
		pl := &plan[li]
		if pl.n == 0 || pl.cmax == 0 {
			continue
		}
		l := &lanes[li]
		p := l.Delta
		for j := 0; j < pl.n; j++ {
			row := int(mrows[pl.rowBase+j])
			cnt := int(mcnt[pl.rowBase+j])
			if cnt == 0 {
				continue
			}
			tret := tretCol[row]
			if shadow[row] != tret {
				shadow[row] = tret
				nan := math.NaN()
				for i := range ext[row].p {
					ext[row].p[i].dt = nan
				}
			}
			x := &ext[row]
			v0 := charge[row]
			lt := lastT[row]
			rr := retired[row]
			rc, mp := int32(0), int32(0)
			if hasCnt {
				rcv, mpv := rcount[row], mprsf[row]
				if int64(int32(rcv)) != int64(rcv) || int64(int32(mpv)) != int64(mpv) {
					b.macroFlushViol(sc)
					return res, fmt.Errorf("dram: stream counter for row %d overflows the packed column (%d/%d)", row, rcv, mpv)
				}
				rc, mp = int32(rcv), int32(mpv)
			}
			base := pl.evBase + macroIdx(j, 0, pl.stride)
			// Two-entry MRU register memo: a row's dt ALTERNATES between two
			// rounding values near binade crossings of t, so one register
			// thrashes where a pair captures the cycle; the pinned per-row
			// overflow memo (shared with RefreshStream) backs both across
			// windows.
			dtA, fA := math.NaN(), 0.0
			dtB, fB := math.NaN(), 0.0
			t := l.Events[l.Head+j].T
			for k := 0; k < cnt; k++ {
				times[base+(k<<3)] = t
				dt := t - lt
				if dt < 0 {
					b.macroFlushViol(sc)
					return res, fmt.Errorf("dram: time went backwards for row %d: %.6g < %.6g", row, t, lt)
				}
				var f float64
				if dt == dtA {
					f = fA
				} else if dt == dtB {
					f = fB
					dtA, dtB = dtB, dtA
					fA, fB = fB, fA
				} else {
					// Overflow memo: direct probe at a mantissa-hashed home
					// slot, then a pinned scan. Values are inserted at a free
					// slot when the home is taken (a row's working set is
					// small but collides in any fixed hash, and evicting a
					// pinned value would ping-pong), so a scan hit never
					// recomputes; the home probe just short-circuits it.
					hb := math.Float64bits(dt)
					h := int((hb ^ hb>>3 ^ hb>>6) & 7)
					if x.p[h].dt == dt {
						f = x.p[h].f
					} else {
						hit := false
						for i := range x.p {
							if x.p[i].dt == dt {
								f = x.p[i].f
								hit = true
								break
							}
						}
						if !hit {
							if dt == 0 {
								f = 1
							} else if tret <= 0 {
								f = 0
							} else {
								f = math.Exp2(-dt / tret)
							}
							if x.p[h].dt != x.p[h].dt { // home free: take it
								x.p[h] = streamPair{dt: dt, f: f}
							} else {
								ins := h
								for i := range x.p {
									if x.p[i].dt != x.p[i].dt {
										ins = i
										break
									}
								}
								x.p[ins] = streamPair{dt: dt, f: f}
							}
						}
					}
					dtB, fB = dtA, fA
					dtA, fA = dt, f
				}
				v := v0 * f
				if v < retention.SenseLimit && !rr {
					sc.macroViol = append(sc.macroViol, Violation{Row: row, Time: t, Charge: v})
				}
				full := !hasCnt || rc == mp
				alpha := alphaP
				op := byte(0)
				nrc := rc + 1
				if full {
					alpha, op, nrc = alphaF, 1, 0
					fulls++
				}
				rc = nrc
				after := v + (1-v)*alpha
				deltas[base+(k<<3)] = after - v
				ops[base+(k<<3)] = op
				v0 = after
				lt = t
				t += p
				events++
			}
			charge[row] = v0
			lastT[row] = lt
			if hasCnt {
				rcount[row] = int(rc)
			}
		}
	}

	// Pass D: fold the buffered deltas into the accumulator in global
	// (time, row) order via a cursor merge over the lanes' lap-prefix
	// columns, verifying strict (time, row) increase as it goes.
	var curs [macroMaxLanes]macroCursor
	for li := range lanes {
		pl := &plan[li]
		c := &curs[li]
		*c = macroCursor{}
		if pl.n == 0 || pl.cmax == 0 {
			continue
		}
		c.alive = true
		c.t = times[pl.evBase] // j = 0, k = 0 maps to the base slot
		c.row = int(mrows[pl.rowBase])
	}
	prevT := math.Inf(-1)
	lastOp := byte(1)
	lastLane, lastJ, lastIdx := -1, 0, 0
	ordered := true
	consumed := 0
	// Run-batched merge: pick the minimum cursor AND the runner-up bound,
	// then drain a run from the winning lane while it stays strictly below
	// the bound. The dominant lane yields runs of a dozen or more events, so
	// the lane scan amortizes across the run. Inside a run the fast path per
	// event is load time / compare / accumulate: row identities only matter
	// on time ties (the (time, row) order is only consulted when times are
	// equal) and the last event's op only matters once, so both are deferred
	// - rows to a careful path taken on any time tie or order violation, the
	// op to one lookup after the merge.
outer:
	for consumed < events {
		best := -1
		for li := range lanes {
			c := &curs[li]
			if !c.alive {
				continue
			}
			if best < 0 || c.t < curs[best].t || (c.t == curs[best].t && c.row < curs[best].row) {
				best = li
			}
		}
		if best < 0 {
			ordered = false
			break
		}
		tBound := math.Inf(1)
		rowBound := -1
		for li := range lanes {
			c := &curs[li]
			if li == best || !c.alive {
				continue
			}
			if c.t < tBound || (c.t == tBound && c.row < rowBound) {
				tBound, rowBound = c.t, c.row
			}
		}
		c := &curs[best]
		pl := &plan[best]
		evb, rb, st8 := pl.evBase, pl.rowBase, pl.stride<<3
		for {
			lim := pl.n
			if c.k >= pl.cmin {
				lim = pl.m
			}
			k8 := c.k << 3
			for j := c.j; j < lim; j++ {
				idx := evb + (j>>3)*st8 + k8 + (j&7)
				t := times[idx]
				if t > prevT && t < tBound {
					prevT = t
					acc += deltas[idx]
					lastLane, lastJ, lastIdx = best, j, idx
					consumed++
					continue
				}
				// Careful path: a time tie or an order break. Row identities
				// decide; the previous event's row is recovered from its lane
				// slot (rows do not vary across laps).
				row := int(mrows[rb+j])
				if t > tBound || (t == tBound && row > rowBound) {
					// Run over: the bound lane is now the merge minimum.
					c.j, c.t, c.row = j, t, row
					continue outer
				}
				pr := -1
				if lastLane >= 0 {
					pr = int(mrows[plan[lastLane].rowBase+lastJ])
				}
				if !(t > prevT || (t == prevT && row > pr)) {
					ordered = false
					break outer
				}
				prevT = t
				acc += deltas[idx]
				lastLane, lastJ, lastIdx = best, j, idx
				consumed++
			}
			// Lap exhausted: next lap restarts at the first row.
			c.k++
			c.j = 0
			if c.k >= pl.cmax {
				c.alive = false
				continue outer
			}
		}
	}
	if events > 0 && ordered && consumed == events {
		lastOp = ops[lastIdx]
	}
	if !ordered || consumed != events {
		// The generated columns are not globally sorted through the cursor
		// walk (or the walk lost events): re-sort every buffered event and
		// replay the accumulation from the sorted copy. Exact, just slower;
		// per-row state from pass C is order-independent and stands.
		acc, lastOp, prevT = macroSortedReplay(sc, plan[:len(lanes)], res.ChargeRestored)
	}

	// Violations were collected row-major; (time, row) is a strict total
	// order, so sorting them reproduces the global append order.
	b.macroFlushViol(sc)

	// Write back each lane's next pending events: the cmax prefix rows and
	// the cmin suffix rows are each sorted by (time, row) already, so the
	// new lane content is their two-way merge.
	for li := range lanes {
		pl := &plan[li]
		if pl.n == 0 || pl.cmax == 0 {
			continue
		}
		l := &lanes[li]
		if cap(l.Events) < pl.n {
			l.Events = make([]StreamEvent, pl.n)
		}
		l.Events = l.Events[:pl.n]
		l.Head = 0
		out := l.Events
		a, bd := 0, pl.m // prefix cursor, suffix cursor
		for o := 0; o < pl.n; o++ {
			takeA := a < pl.m
			if takeA && bd < pl.n {
				ta, ra := sc.mnext[pl.rowBase+a], int(mrows[pl.rowBase+a])
				tb, rb := sc.mnext[pl.rowBase+bd], int(mrows[pl.rowBase+bd])
				takeA = ta < tb || (ta == tb && ra < rb)
			}
			if takeA {
				out[o] = StreamEvent{T: sc.mnext[pl.rowBase+a], Row: int(mrows[pl.rowBase+a])}
				a++
			} else {
				out[o] = StreamEvent{T: sc.mnext[pl.rowBase+bd], Row: int(mrows[pl.rowBase+bd])}
				bd++
			}
		}
	}

	res.Events = events
	res.Fulls = fulls
	res.Partials = int64(events) - fulls
	if events > 0 {
		res.LastTime = prevT
		if lastOp == 1 {
			res.LastCycles = cfg.CyclesFull
		} else {
			res.LastCycles = cfg.CyclesPartial
		}
	}
	res.ChargeRestored = acc
	return res, nil
}

// macroFlushViol appends the violations collected so far in global (time,
// row) order; also used when a mid-pass error aborts the window, mirroring
// the scalar path's partial-progress semantics.
func (b *Bank) macroFlushViol(sc *StreamScratch) {
	if len(sc.macroViol) == 0 {
		return
	}
	sort.Slice(sc.macroViol, func(i, j int) bool {
		a, v := sc.macroViol[i], sc.macroViol[j]
		return a.Time < v.Time || (a.Time == v.Time && a.Row < v.Row)
	})
	b.violations = append(b.violations, sc.macroViol...)
	sc.macroViol = sc.macroViol[:0]
}

// macroSortedReplay is the order-verification fallback: gather every
// buffered event, sort by (time, row), and replay the delta accumulation
// from the sorted copy. Returns the accumulator, the last event's op, and
// the last event's time.
func macroSortedReplay(sc *StreamScratch, plan []macroLane, acc float64) (float64, byte, float64) {
	type evd struct {
		t     float64
		row   int
		delta float64
		op    byte
	}
	var all []evd
	for li := range plan {
		pl := &plan[li]
		for j := 0; j < pl.n; j++ {
			cnt := int(sc.mcnt[pl.rowBase+j])
			row := int(sc.mrows[pl.rowBase+j])
			base := pl.evBase + macroIdx(j, 0, pl.stride)
			for k := 0; k < cnt; k++ {
				all = append(all, evd{t: sc.times[base+(k<<3)], row: row, delta: sc.deltas[base+(k<<3)], op: sc.ops[base+(k<<3)]})
			}
		}
	}
	sort.Slice(all, func(i, j int) bool {
		return all[i].t < all[j].t || (all[i].t == all[j].t && all[i].row < all[j].row)
	})
	lastOp := byte(1)
	lastT := math.Inf(-1)
	for i := range all {
		acc += all[i].delta
		lastOp = all[i].op
		lastT = all[i].t
	}
	return acc, lastOp, lastT
}

// ffLaps returns the largest k >= 0 with t + k*period < horizon, against
// the same float iteration the lanes perform (duplicated from internal/sim's
// planner to keep the package dependency-free; used only as a capacity
// bound, with the exact count settled by the generation walk itself).
func ffLaps(t, period, horizon float64) int {
	if !(period > 0) || !(t < horizon) {
		return 0
	}
	r := (horizon - t) / period
	const max = 1 << 30
	k := max
	if r < max {
		k = int(r)
	}
	// Bisect a saturated estimate (horizon-t can overflow to +Inf) onto the
	// actual repeated-add expression, then settle the rounding steps.
	if !(t+float64(k)*period < horizon) {
		lo, hi := 0, k
		for hi-lo > 1 {
			mid := lo + (hi-lo)/2
			if t+float64(mid)*period < horizon {
				lo = mid
			} else {
				hi = mid
			}
		}
		k = lo
	}
	for k > 0 && !(t+float64(k)*period < horizon) {
		k--
	}
	for k < max && t+float64(k+1)*period < horizon {
		k++
	}
	return k
}

// macroEnsure sizes the row-indexed scratch (duplicate detection epochs and
// the shared memo columns) for the bank geometry.
func (sc *StreamScratch) macroEnsure(nRows int) {
	if len(sc.seen) != nRows {
		sc.seen = make([]int32, nRows)
		sc.seenEpoch = 0
	}
	sc.ensureMemo(nRows)
}
