// Columnar batch kernels over the bank's structure-of-arrays row state.
//
// The simulator's hot path senses and restores one row per refresh event;
// these kernels amortize that work across a whole timing-wheel bucket: the
// per-op error checks are hoisted into one validation pass, and decay,
// sensing, and restore then run as tight loops over the charge/lastT/tret
// columns. The batched arithmetic is expression-for-expression identical to
// the scalar ChargeAt/Refresh path, so a batched run is bit-identical to a
// scalar one - the property the internal/sim backend equivalence tests pin
// down. The only sanctioned divergence is on *error* paths: a batch
// validates every op before mutating anything, where the sequential loop
// would have applied the ops preceding the bad one.
package dram

import (
	"fmt"
	"math"

	"vrldram/internal/retention"
)

// BatchOp is one refresh operation in a batch: sense row at Time, then
// restore its charge by Alpha (v' = v + (1-v)*Alpha, as in Refresh).
type BatchOp struct {
	Row   int
	Time  float64 // seconds
	Alpha float64 // restore coefficient in [0,1]
}

// BatchModulator is a Modulator that can integrate decay for many rows in
// one call, amortizing change-point partitioning across rows that share a
// segment schedule (internal/scenario's Env implements it). All slices are
// batch-aligned: out[i] must equal DecayFactor(rows[i], tret[i], t0[i],
// t1[i], base) bit for bit.
type BatchModulator interface {
	Modulator
	DecayFactors(rows []int, tret, t0, t1 []float64, base retention.DecayModel, out []float64)
}

// decayPlain evaluates the unmodulated decay laws with exactly the guards
// and expression shapes of retention.ExpDecay.Factor / LinearDecay.Factor.
func decayPlain(exp bool, dt, tret float64) float64 {
	if dt <= 0 {
		return 1
	}
	if tret <= 0 {
		return 0
	}
	if exp {
		return math.Exp2(-dt / tret)
	}
	f := 1 - (1-retention.SenseLimit)*dt/tret
	if f < 0 {
		return 0
	}
	return f
}

// growF resizes a scratch float column to n, reusing its backing array.
func growF(buf *[]float64, n int) []float64 {
	if cap(*buf) < n {
		*buf = make([]float64, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

// growI resizes a scratch int column to n, reusing its backing array.
func growI(buf *[]int, n int) []int {
	if cap(*buf) < n {
		*buf = make([]int, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

// ChargeAtBatch computes the normalized weakest-cell charge of rows[i] at
// times[i] into out[i], without mutating any state - the batched analogue of
// ChargeAt. Inputs are validated up front (row range, times not preceding
// the rows' last restores) in batch order, so the first invalid entry
// surfaces the same error the scalar path would. If a row appears more than
// once, every occurrence is evaluated against the row's current state.
func (b *Bank) ChargeAtBatch(rows []int, times, out []float64) error {
	n := len(rows)
	if len(times) != n || len(out) != n {
		return fmt.Errorf("dram: batch size mismatch: %d rows, %d times, %d out", n, len(times), len(out))
	}
	nRows := b.Geom.Rows
	for i, r := range rows {
		if r < 0 || r >= nRows {
			return fmt.Errorf("dram: row %d out of range [0,%d)", r, nRows)
		}
		if times[i] < b.lastT[r] {
			return fmt.Errorf("dram: time went backwards for row %d: %.6g < %.6g", r, times[i], b.lastT[r])
		}
	}
	tret := b.retentions()
	switch {
	case b.mod != nil:
		if bm, ok := b.mod.(BatchModulator); ok {
			t0 := growF(&b.batchT0, n)
			tr := growF(&b.batchTret, n)
			f := growF(&b.batchF, n)
			for i, r := range rows {
				t0[i] = b.lastT[r]
				tr[i] = tret[r]
			}
			bm.DecayFactors(rows, tr, t0, times, b.Decay, f)
			for i, r := range rows {
				out[i] = b.charge[r] * f[i]
			}
			return nil
		}
		for i, r := range rows {
			out[i] = b.charge[r] * b.mod.DecayFactor(r, tret[r], b.lastT[r], times[i], b.Decay)
		}
	case b.VRT != nil:
		for i, r := range rows {
			out[i] = b.charge[r] * b.VRT.DecayFactor(r, tret[r], b.lastT[r], times[i], b.Decay)
		}
	default:
		switch b.Decay.(type) {
		case retention.ExpDecay:
			if b.expMemoArg == nil {
				backing := make([]float64, 2*nRows)
				b.expMemoArg = backing[:nRows:nRows]
				b.expMemoVal = backing[nRows:]
			}
			ma, mv := b.expMemoArg, b.expMemoVal
			for i, r := range rows {
				dt := times[i] - b.lastT[r]
				var f float64
				switch {
				case dt <= 0:
					f = 1
				case tret[r] <= 0:
					f = 0
				default:
					if x := -dt / tret[r]; x == ma[r] {
						f = mv[r]
					} else {
						f = math.Exp2(x)
						ma[r], mv[r] = x, f
					}
				}
				out[i] = b.charge[r] * f
			}
		case retention.LinearDecay:
			for i, r := range rows {
				out[i] = b.charge[r] * decayPlain(false, times[i]-b.lastT[r], tret[r])
			}
		default:
			for i, r := range rows {
				out[i] = b.charge[r] * b.Decay.Factor(times[i]-b.lastT[r], tret[r])
			}
		}
	}
	return nil
}

// RestoreSensed applies one refresh restore to a row whose pre-restore
// charge v was already computed (by ChargeAtBatch): it records the
// violation if v is below the sensing limit, then restores by alpha -
// exactly the mutation half of Refresh. The caller owns the contract that v
// is the row's charge at t with no intervening mutation of the row.
func (b *Bank) RestoreSensed(row int, t, alpha, v float64) (RefreshResult, error) {
	if row < 0 || row >= b.Geom.Rows {
		return RefreshResult{}, fmt.Errorf("dram: row %d out of range [0,%d)", row, b.Geom.Rows)
	}
	if !(alpha >= 0 && alpha <= 1) { // rejects NaN too
		return RefreshResult{}, fmt.Errorf("dram: restore alpha %g outside [0,1]", alpha)
	}
	if v < retention.SenseLimit && !b.retired[row] {
		b.violations = append(b.violations, Violation{Row: row, Time: t, Charge: v})
	}
	after := v + (1-v)*alpha
	b.charge[row] = after
	b.lastT[row] = t
	return RefreshResult{ChargeBefore: v, ChargeAfter: after, ChargeRestored: after - v}, nil
}

// stampEpoch returns the epoch-stamped duplicate-detection column, advancing
// the epoch so a fresh batch needs no O(rows) clear.
func (b *Bank) stampEpoch() []int32 {
	if len(b.batchSeen) != b.Geom.Rows {
		b.batchSeen = make([]int32, b.Geom.Rows)
		b.batchEpoch = 0
	}
	if b.batchEpoch == math.MaxInt32 {
		for i := range b.batchSeen {
			b.batchSeen[i] = 0
		}
		b.batchEpoch = 0
	}
	b.batchEpoch++
	return b.batchSeen
}

// RefreshBatch senses and restores a batch of refresh ops, equivalent to
// calling Refresh(op.Row, op.Time, op.Alpha) for each op in order - bit for
// bit: the same violations in the same order, the same charge and lastT
// columns afterwards. results, when non-nil, receives the per-op
// RefreshResult and must match ops in length.
//
// All validation is hoisted ahead of any mutation: rows in range, alphas in
// [0,1], no duplicate rows, ops in strictly increasing (Time, Row) order,
// and no op preceding its row's last restore. An invalid batch mutates
// nothing (the sequential loop would have applied the prefix before the bad
// op - that error-path difference is the sanctioned divergence).
func (b *Bank) RefreshBatch(ops []BatchOp, results []RefreshResult) error {
	n := len(ops)
	if results != nil && len(results) != n {
		return fmt.Errorf("dram: batch size mismatch: %d ops, %d results", n, len(results))
	}
	nRows := b.Geom.Rows
	seen := b.stampEpoch()
	epoch := b.batchEpoch
	prevT := math.Inf(-1)
	prevRow := -1
	for i := range ops {
		op := &ops[i]
		if op.Row < 0 || op.Row >= nRows {
			return fmt.Errorf("dram: batch op %d: row %d out of range [0,%d)", i, op.Row, nRows)
		}
		if !(op.Alpha >= 0 && op.Alpha <= 1) { // rejects NaN too
			return fmt.Errorf("dram: batch op %d: restore alpha %g outside [0,1]", i, op.Alpha)
		}
		if seen[op.Row] == epoch {
			return fmt.Errorf("dram: batch op %d: duplicate row %d", i, op.Row)
		}
		seen[op.Row] = epoch
		if op.Time < prevT || (op.Time == prevT && op.Row <= prevRow) {
			return fmt.Errorf("dram: batch op %d: out of (time, row) order: (%.6g, %d) after (%.6g, %d)", i, op.Time, op.Row, prevT, prevRow)
		}
		prevT, prevRow = op.Time, op.Row
		if op.Time < b.lastT[op.Row] {
			return fmt.Errorf("dram: time went backwards for row %d: %.6g < %.6g", op.Row, op.Time, b.lastT[op.Row])
		}
	}

	rows := growI(&b.batchRows, n)
	times := growF(&b.batchTimes, n)
	for i := range ops {
		rows[i] = ops[i].Row
		times[i] = ops[i].Time
	}
	charges := growF(&b.batchCharge, n)
	if err := b.ChargeAtBatch(rows, times, charges); err != nil {
		return err
	}

	for i := range ops {
		op := &ops[i]
		v := charges[i]
		if v < retention.SenseLimit && !b.retired[op.Row] {
			b.violations = append(b.violations, Violation{Row: op.Row, Time: op.Time, Charge: v})
		}
		after := v + (1-v)*op.Alpha
		b.charge[op.Row] = after
		b.lastT[op.Row] = op.Time
		if results != nil {
			results[i] = RefreshResult{ChargeBefore: v, ChargeAfter: after, ChargeRestored: after - v}
		}
	}
	return nil
}
