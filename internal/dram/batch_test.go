package dram

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"vrldram/internal/device"
	"vrldram/internal/retention"
)

func newBankDecay(t *testing.T, decay retention.DecayModel) *Bank {
	t.Helper()
	b, err := NewBank(smallProfile(t), decay, retention.PatternAllZeros)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// randomBatch draws a valid batch: distinct rows in strictly increasing
// (time, row) order starting at or after t0, with alphas in [0, 1]. Low
// alphas and generous time steps push charges below the sensing limit, so
// the violation paths get real coverage.
func randomBatch(rng *rand.Rand, rows int, t0 float64) ([]BatchOp, float64) {
	k := 1 + rng.Intn(rows)
	perm := rng.Perm(rows)[:k]
	ops := make([]BatchOp, k)
	t := t0
	for i, r := range perm {
		if i == 0 || rng.Intn(3) > 0 {
			t += rng.Float64() * 0.3
		}
		ops[i] = BatchOp{Row: r, Time: t, Alpha: rng.Float64()}
	}
	// Shared times need rows increasing to satisfy the (time, row) order.
	sort.Slice(ops, func(i, j int) bool {
		if ops[i].Time != ops[j].Time {
			return ops[i].Time < ops[j].Time
		}
		return ops[i].Row < ops[j].Row
	})
	return ops, t
}

// TestRefreshBatchMatchesSequential is the package-level bit-identity
// property: RefreshBatch must leave the bank in exactly the state a
// sequential Refresh loop would - same charge and lastT columns, same
// violations in the same order, same per-op results - across decay models
// (covering the memoized exponential, the linear, and the generic columnar
// kernels).
func TestRefreshBatchMatchesSequential(t *testing.T) {
	lutDecay, err := retention.NewDecayLUT(retention.ExpDecay{})
	if err != nil {
		t.Fatal(err)
	}
	decays := []retention.DecayModel{retention.ExpDecay{}, retention.LinearDecay{}, lutDecay}
	for _, decay := range decays {
		t.Run(decay.Name(), func(t *testing.T) {
			batched := newBankDecay(t, decay)
			scalar := newBankDecay(t, decay)
			rng := rand.New(rand.NewSource(3))
			tNow := 0.0
			for round := 0; round < 200; round++ {
				var ops []BatchOp
				ops, tNow = randomBatch(rng, batched.Geom.Rows, tNow)
				gotRes := make([]RefreshResult, len(ops))
				if err := batched.RefreshBatch(ops, gotRes); err != nil {
					t.Fatalf("round %d: RefreshBatch: %v", round, err)
				}
				for i, op := range ops {
					wantRes, err := scalar.Refresh(op.Row, op.Time, op.Alpha)
					if err != nil {
						t.Fatalf("round %d: Refresh: %v", round, err)
					}
					if gotRes[i] != wantRes {
						t.Fatalf("round %d op %d: result %+v, want %+v", round, i, gotRes[i], wantRes)
					}
				}
			}
			if !reflect.DeepEqual(batched.State(), scalar.State()) {
				t.Fatal("batched and sequential bank states diverged")
			}
			if len(batched.Violations()) == 0 {
				t.Fatal("vacuous: workload produced no violations")
			}
		})
	}
}

// TestChargeAtBatchMatchesScalar: the read-only batch kernel must agree with
// ChargeAt bit for bit on every decay path, including repeated rows.
func TestChargeAtBatchMatchesScalar(t *testing.T) {
	lutDecay, err := retention.NewDecayLUT(retention.LinearDecay{})
	if err != nil {
		t.Fatal(err)
	}
	for _, decay := range []retention.DecayModel{retention.ExpDecay{}, retention.LinearDecay{}, lutDecay} {
		t.Run(decay.Name(), func(t *testing.T) {
			b := newBankDecay(t, decay)
			rng := rand.New(rand.NewSource(9))
			// Scatter the lastT column first so dt varies per row.
			for r := 0; r < b.Geom.Rows; r++ {
				if _, err := b.Refresh(r, rng.Float64()*0.1, 1); err != nil {
					t.Fatal(err)
				}
			}
			n := 300
			rows := make([]int, n)
			times := make([]float64, n)
			out := make([]float64, n)
			for i := range rows {
				rows[i] = rng.Intn(b.Geom.Rows)
				times[i] = 0.1 + rng.Float64()*2
			}
			if err := b.ChargeAtBatch(rows, times, out); err != nil {
				t.Fatal(err)
			}
			for i := range rows {
				want, err := b.ChargeAt(rows[i], times[i])
				if err != nil {
					t.Fatal(err)
				}
				if out[i] != want {
					t.Fatalf("op %d: ChargeAtBatch %.17g, ChargeAt %.17g", i, out[i], want)
				}
			}
		})
	}
}

// TestRefreshBatchValidation: every malformed batch is rejected before any
// mutation - charge, lastT, and violations must be exactly what they were.
func TestRefreshBatchValidation(t *testing.T) {
	cases := []struct {
		name string
		ops  []BatchOp
	}{
		{"row-negative", []BatchOp{{Row: -1, Time: 0.1, Alpha: 1}}},
		{"row-high", []BatchOp{{Row: 16, Time: 0.1, Alpha: 1}}},
		{"alpha-negative", []BatchOp{{Row: 1, Time: 0.1, Alpha: -0.1}}},
		{"alpha-high", []BatchOp{{Row: 1, Time: 0.1, Alpha: 1.1}}},
		{"alpha-nan", []BatchOp{{Row: 1, Time: 0.1, Alpha: math.NaN()}}},
		{"duplicate-row", []BatchOp{{Row: 3, Time: 0.1, Alpha: 1}, {Row: 3, Time: 0.2, Alpha: 1}}},
		{"time-reversed", []BatchOp{{Row: 1, Time: 0.2, Alpha: 1}, {Row: 2, Time: 0.1, Alpha: 1}}},
		{"tie-row-reversed", []BatchOp{{Row: 2, Time: 0.1, Alpha: 1}, {Row: 1, Time: 0.1, Alpha: 1}}},
		{"tie-row-equal", []BatchOp{{Row: 2, Time: 0.1, Alpha: 1}, {Row: 2, Time: 0.1, Alpha: 1}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := newBank(t)
			pre := b.State()
			if err := b.RefreshBatch(tc.ops, nil); err == nil {
				t.Fatal("invalid batch accepted")
			}
			if !reflect.DeepEqual(b.State(), pre) {
				t.Fatal("rejected batch mutated the bank")
			}
		})
	}

	b := newBank(t)
	if _, err := b.Refresh(4, 1.0, 1); err != nil {
		t.Fatal(err)
	}
	pre := b.State()
	if err := b.RefreshBatch([]BatchOp{{Row: 4, Time: 0.5, Alpha: 1}}, nil); err == nil {
		t.Fatal("batch preceding a row's last restore accepted")
	}
	if !reflect.DeepEqual(b.State(), pre) {
		t.Fatal("rejected batch mutated the bank")
	}
	if err := b.RefreshBatch([]BatchOp{{Row: 1, Time: 2, Alpha: 1}}, make([]RefreshResult, 2)); err == nil {
		t.Fatal("mismatched results length accepted")
	}
}

func TestRestoreSensedValidation(t *testing.T) {
	b := newBank(t)
	if _, err := b.RestoreSensed(-1, 0.1, 1, 0.9); err == nil {
		t.Fatal("negative row accepted")
	}
	if _, err := b.RestoreSensed(b.Geom.Rows, 0.1, 1, 0.9); err == nil {
		t.Fatal("out-of-range row accepted")
	}
	if _, err := b.RestoreSensed(1, 0.1, 1.5, 0.9); err == nil {
		t.Fatal("alpha above 1 accepted")
	}
	if _, err := b.RestoreSensed(1, 0.1, -0.5, 0.9); err == nil {
		t.Fatal("negative alpha accepted")
	}
}

// FuzzRefreshBatch decodes arbitrary bytes into a batch - rows, time deltas,
// and alphas all allowed to go invalid - and checks the RefreshBatch
// contract both ways: a rejected batch mutates nothing, and an accepted one
// is bit-identical to the sequential Refresh loop.
func FuzzRefreshBatch(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{3, 16, 200, 5, 16, 200}) // two valid ops
	f.Add([]byte{3, 16, 200, 3, 16, 200}) // duplicate row
	f.Add([]byte{200, 16, 200})           // row out of range
	f.Add([]byte{3, 16, 255, 4, 0, 255})  // time tie, rows increasing
	f.Add([]byte{4, 16, 200, 3, 0, 200})  // time tie, rows decreasing
	f.Add([]byte{3, 0x90, 200})           // negative time delta
	f.Add([]byte{3, 16, 0xF0})            // alpha out of range
	f.Fuzz(func(t *testing.T, data []byte) {
		batched, err := NewBank(fuzzProfile, retention.ExpDecay{}, retention.PatternAllZeros)
		if err != nil {
			t.Fatal(err)
		}
		scalar, err := NewBank(fuzzProfile, retention.ExpDecay{}, retention.PatternAllZeros)
		if err != nil {
			t.Fatal(err)
		}
		ops := make([]BatchOp, 0, len(data)/3)
		tNow := 0.0
		for i := 0; i+2 < len(data); i += 3 {
			// Row byte may exceed the 16-row bank; the signed delta byte may
			// step time backwards; the signed alpha byte may leave [0, 1].
			tNow += float64(int8(data[i+1])) / 64
			ops = append(ops, BatchOp{
				Row:   int(data[i]),
				Time:  tNow,
				Alpha: float64(int8(data[i+2])) / 100,
			})
		}
		pre := batched.State()
		results := make([]RefreshResult, len(ops))
		if err := batched.RefreshBatch(ops, results); err != nil {
			if !reflect.DeepEqual(batched.State(), pre) {
				t.Fatal("rejected batch mutated the bank")
			}
			return
		}
		for i, op := range ops {
			want, err := scalar.Refresh(op.Row, op.Time, op.Alpha)
			if err != nil {
				t.Fatalf("sequential replay of an accepted batch failed at op %d: %v", i, err)
			}
			if results[i] != want {
				t.Fatalf("op %d: result %+v, want %+v", i, results[i], want)
			}
		}
		if !reflect.DeepEqual(batched.State(), scalar.State()) {
			t.Fatal("accepted batch diverged from the sequential loop")
		}
	})
}

// fuzzProfile is the deterministic 16-row profile FuzzRefreshBatch banks are
// built from. Banks only read their profile, so sharing it across the fuzz
// engine's worker goroutines is safe.
var fuzzProfile = func() *retention.BankProfile {
	geom := device.BankGeometry{Rows: 16, Cols: 4}
	p := &retention.BankProfile{
		Geom:     geom,
		True:     make([]float64, geom.Rows),
		Profiled: make([]float64, geom.Rows),
	}
	for r := range p.True {
		p.True[r] = 0.064 * float64(r+2)
		p.Profiled[r] = retention.ProfileRetention(p.True[r])
	}
	return p
}()
