package dram

import (
	"fmt"

	"vrldram/internal/ecc"
	"vrldram/internal/retention"
)

// DataBank is a Bank that also stores actual data: one 64-bit word per row,
// SECDED-protected, with the weakest cell mapped to a data bit. It closes
// the loop between the charge-level model and bit-level integrity: when a
// row is sensed with its weakest cell below the limit, the stored word reads
// back with that bit flipped, and the (72,64) code either corrects or
// detects it - the machinery AVATAR-style online mitigation keys off.
//
// One word per row is deliberately minimal: every row already tracks only
// its weakest cell, so a wider data array would add storage without adding
// modeled behaviour.
type DataBank struct {
	*Bank
	words      []ecc.Codeword
	classifier ecc.ChargeClassifier

	// weakBit[r] is the data bit position the row's weakest cell holds.
	weakBit []int
}

// NewDataBank wraps a bank with data storage; words start at zero.
func NewDataBank(profile *retention.BankProfile, decay retention.DecayModel, pattern retention.Pattern) (*DataBank, error) {
	b, err := NewBank(profile, decay, pattern)
	if err != nil {
		return nil, err
	}
	db := &DataBank{
		Bank:       b,
		words:      make([]ecc.Codeword, b.Geom.Rows),
		classifier: ecc.DefaultClassifier(),
		weakBit:    make([]int, b.Geom.Rows),
	}
	for r := range db.weakBit {
		// Deterministic pseudo-random bit position per row.
		db.weakBit[r] = int(uint32(r)*2654435761>>16) % ecc.DataBits
		db.words[r] = ecc.Encode(0)
	}
	return db, nil
}

// WriteWord stores data in the row at time t (an activation: fully restores
// charge).
func (db *DataBank) WriteWord(row int, t float64, data uint64) error {
	if row < 0 || row >= db.Geom.Rows {
		return fmt.Errorf("dram: row %d out of range", row)
	}
	if _, err := db.Bank.Access(row, t); err != nil {
		return err
	}
	db.words[row] = ecc.Encode(data)
	return nil
}

// ReadResult is the outcome of a data read.
type ReadResult struct {
	Data   uint64
	Result ecc.DecodeResult
	Charge float64 // sensed weakest-cell charge
}

// ReadWord senses and reads the row at time t. If the weakest cell has
// sagged into the correctable window, the raw word comes back with the weak
// bit flipped and ECC repairs it; deeper sag is uncorrectable and the
// returned data is unreliable. Reading activates the row (restoring charge
// and, if the read was still correct or correctable, rewriting the word
// intact).
func (db *DataBank) ReadWord(row int, t float64) (ReadResult, error) {
	if row < 0 || row >= db.Geom.Rows {
		return ReadResult{}, fmt.Errorf("dram: row %d out of range", row)
	}
	charge, err := db.Bank.ChargeAt(row, t)
	if err != nil {
		return ReadResult{}, err
	}
	raw := db.words[row]
	outcome := db.classifier.Classify(charge)
	switch outcome {
	case ecc.Corrected:
		raw = raw.FlipDataBit(db.weakBit[row])
	case ecc.Uncorrectable:
		// The weak bit and at least one neighbour have flipped.
		raw = raw.FlipDataBit(db.weakBit[row])
		raw = raw.FlipDataBit((db.weakBit[row] + 1) % ecc.DataBits)
	}
	data, decode := ecc.Decode(raw)

	// The activation restores the row; a successful (or corrected) read
	// scrubs the stored word back to its clean encoding.
	if _, err := db.Bank.Access(row, t); err != nil {
		return ReadResult{}, err
	}
	if decode != ecc.Uncorrectable {
		db.words[row] = ecc.Encode(data)
	} else {
		db.words[row] = raw
	}
	return ReadResult{Data: data, Result: decode, Charge: charge}, nil
}
