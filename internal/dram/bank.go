// Package dram models a DRAM bank at the granularity the VRL-DRAM mechanism
// cares about: the normalized charge of each row's weakest cell, decaying
// according to the row's true retention time and the stored data pattern,
// restored by refresh operations and row activations.
//
// The bank is the mechanism's safety net: every refresh and access first
// senses the row, and a row whose weakest cell has fallen below the sensing
// limit records a data-integrity violation. A correctly computed MPRSF must
// never produce one; the failure-injection tests show that an unsafe
// configuration does.
package dram

import (
	"fmt"

	"vrldram/internal/device"
	"vrldram/internal/retention"
)

// Violation records a data-integrity failure: a row was sensed while its
// weakest cell was below the sensing limit.
type Violation struct {
	Row    int
	Time   float64 // seconds
	Charge float64 // normalized charge at sensing
}

// Modulator modulates per-row retention over time: DecayFactor integrates
// the decay of a row with base retention tret across [t0, t1] under the
// modulation. retention.VRT satisfies it directly; internal/scenario's Env
// satisfies it for composed stress schedules (the interface lives here,
// structurally, so neither package imports the other).
type Modulator interface {
	DecayFactor(row int, tret, t0, t1 float64, base retention.DecayModel) float64
}

// Bank tracks per-row weakest-cell charge lazily: each row stores its charge
// at the time of its last restore, and decay is applied on demand.
type Bank struct {
	Geom    device.BankGeometry
	Profile *retention.BankProfile
	Decay   retention.DecayModel
	Pattern retention.Pattern

	// VRT, when non-nil, modulates per-row retention with the
	// random-telegraph process of retention.VRT. Static profiles do not see
	// it - that is the point of the VRT experiments.
	VRT *retention.VRT

	// mod, when non-nil, takes precedence over VRT: a composed stress
	// schedule (internal/scenario) that already folds any VRT process into
	// its segment integration. A bank runs at most one retention view, so
	// attaching both is refused.
	mod Modulator

	// Row state is a structure-of-arrays: the batched kernels in batch.go
	// stream over these slices directly, so they share one backing array
	// (one allocation, contiguous cache lines) and are never appended to.
	charge []float64 // normalized charge at lastT
	lastT  []float64 // time the charge was last set (s)
	tret   []float64 // effective retention under the stored pattern (s)

	// tretPattern is the pattern tret was computed for; retentions()
	// recomputes the slice if the exported Pattern field was changed after
	// construction, keeping the precomputed column equal to what
	// effectiveRetention returns live.
	tretPattern retention.Pattern

	// retired rows have been quarantined by a spare-row remap (see
	// internal/scrub): their data lives on an implicitly healthy spare, so
	// sensing the weak row no longer records integrity violations.
	retired []bool

	violations []Violation

	// Batch scratch (pure caches, never part of State): epoch-stamped
	// duplicate-row detection and gather buffers for the batched kernels.
	batchSeen   []int32
	batchEpoch  int32
	batchF      []float64 // modulator decay factors
	batchT0     []float64 // gathered last-restore times for BatchModulator
	batchTret   []float64 // gathered effective retentions for BatchModulator
	batchRows   []int     // RefreshBatch gather columns
	batchTimes  []float64
	batchCharge []float64

	// Per-row Exp2 memo for the batched exponential-decay kernel. A row
	// refreshed on a steady period sees the bit-identical -dt/tret argument
	// refresh after refresh, so caching the last (argument, result) pair
	// skips most Exp2 calls. Value-keyed on the exact argument bits, the
	// memo can never change a result. expMemoArg[r] is the last argument
	// (always negative in the kernel, so the zero value never false-hits);
	// expMemoVal[r] the corresponding Exp2. One backing array holds both.
	expMemoArg []float64
	expMemoVal []float64

}

// NewBank returns a bank with every row fully charged at t = 0.
func NewBank(profile *retention.BankProfile, decay retention.DecayModel, pattern retention.Pattern) (*Bank, error) {
	if profile == nil {
		return nil, fmt.Errorf("dram: nil profile")
	}
	if decay == nil {
		decay = retention.ExpDecay{}
	}
	if len(profile.True) != profile.Geom.Rows {
		return nil, fmt.Errorf("dram: profile has %d rows, geometry says %d", len(profile.True), profile.Geom.Rows)
	}
	rows := profile.Geom.Rows
	backing := make([]float64, 3*rows)
	b := &Bank{
		Geom:    profile.Geom,
		Profile: profile,
		Decay:   decay,
		Pattern: pattern,
		charge:  backing[0*rows : 1*rows : 1*rows],
		lastT:   backing[1*rows : 2*rows : 2*rows],
		tret:    backing[2*rows : 3*rows : 3*rows],
		retired: make([]bool, rows),
	}
	for r := range b.charge {
		b.charge[r] = 1
	}
	b.fillRetentions()
	return b, nil
}

// fillRetentions precomputes the tret column with exactly the expression
// effectiveRetention evaluates, so the batched kernels read values that are
// bit-identical to the scalar path's.
func (b *Bank) fillRetentions() {
	pf := retention.PatternFactor(b.Pattern)
	for r := range b.tret {
		b.tret[r] = b.Profile.True[r] * pf
	}
	b.tretPattern = b.Pattern
}

// retentions returns the precomputed per-row effective retention column,
// refreshing it first if the Pattern field was mutated since the last fill.
func (b *Bank) retentions() []float64 {
	if b.tretPattern != b.Pattern {
		b.fillRetentions()
	}
	return b.tret
}

// effectiveRetention is the row's true retention under the stored pattern.
func (b *Bank) effectiveRetention(row int) float64 {
	return b.Profile.True[row] * retention.PatternFactor(b.Pattern)
}

// SetVRT attaches a variable-retention-time process to the bank; pass nil
// to detach. Returns an error for invalid parameters or if a scenario
// modulator is already attached (fold the VRT into the scenario instead).
func (b *Bank) SetVRT(v *retention.VRT) error {
	if v != nil {
		if err := v.Validate(); err != nil {
			return err
		}
		if b.mod != nil {
			return fmt.Errorf("dram: bank already carries a scenario modulator; compose the VRT into it")
		}
	}
	b.VRT = v
	return nil
}

// SetModulator attaches a composed retention modulation (a scenario Env) to
// the bank; pass nil to detach. Mutually exclusive with SetVRT: a stress
// schedule that wants a telegraph process composes it as one of its own
// stressors, so the decay integration stays exact across overlapping
// change-points.
func (b *Bank) SetModulator(m Modulator) error {
	if m != nil && b.VRT != nil {
		return fmt.Errorf("dram: bank already carries a VRT process; compose it into the scenario")
	}
	b.mod = m
	return nil
}

// ChargeAt returns the row's normalized weakest-cell charge at time t
// (t must not precede the row's last restore).
func (b *Bank) ChargeAt(row int, t float64) (float64, error) {
	if row < 0 || row >= b.Geom.Rows {
		return 0, fmt.Errorf("dram: row %d out of range [0,%d)", row, b.Geom.Rows)
	}
	dt := t - b.lastT[row]
	if dt < 0 {
		return 0, fmt.Errorf("dram: time went backwards for row %d: %.6g < %.6g", row, t, b.lastT[row])
	}
	tret := b.effectiveRetention(row)
	if b.mod != nil {
		return b.charge[row] * b.mod.DecayFactor(row, tret, b.lastT[row], t, b.Decay), nil
	}
	if b.VRT != nil {
		return b.charge[row] * b.VRT.DecayFactor(row, tret, b.lastT[row], t, b.Decay), nil
	}
	return b.charge[row] * b.Decay.Factor(dt, tret), nil
}

// sense reads the row's charge at t, recording a violation if it is below
// the sensing limit.
func (b *Bank) sense(row int, t float64) (float64, error) {
	v, err := b.ChargeAt(row, t)
	if err != nil {
		return 0, err
	}
	if v < retention.SenseLimit && !b.retired[row] {
		b.violations = append(b.violations, Violation{Row: row, Time: t, Charge: v})
	}
	return v, nil
}

// Retire quarantines the row: its data has been relocated to a spare, so
// the weak row's sub-limit senses stop counting as integrity violations.
// Retirement is permanent for the life of the bank.
func (b *Bank) Retire(row int) error {
	if row < 0 || row >= b.Geom.Rows {
		return fmt.Errorf("dram: row %d out of range [0,%d)", row, b.Geom.Rows)
	}
	b.retired[row] = true
	return nil
}

// Retired returns the retired rows in increasing order.
func (b *Bank) Retired() []int {
	n := 0
	for _, dead := range b.retired {
		if dead {
			n++
		}
	}
	if n == 0 {
		return nil
	}
	out := make([]int, 0, n)
	for r, dead := range b.retired {
		if dead {
			out = append(out, r)
		}
	}
	return out
}

// RefreshResult reports what one refresh operation did.
type RefreshResult struct {
	ChargeBefore   float64
	ChargeAfter    float64
	ChargeRestored float64 // normalized charge delivered (after - before)
}

// Refresh senses the row at time t and restores its charge by the refresh
// restore coefficient alpha: v' = v + (1-v)*alpha (paper Eq. 12 in
// normalized form). A full refresh has alpha ~ 1; a partial refresh the
// alpha of its truncated post-sensing window.
func (b *Bank) Refresh(row int, t, alpha float64) (RefreshResult, error) {
	if !(alpha >= 0 && alpha <= 1) { // rejects NaN too
		return RefreshResult{}, fmt.Errorf("dram: restore alpha %g outside [0,1]", alpha)
	}
	v, err := b.sense(row, t)
	if err != nil {
		return RefreshResult{}, err
	}
	after := v + (1-v)*alpha
	b.charge[row] = after
	b.lastT[row] = t
	return RefreshResult{ChargeBefore: v, ChargeAfter: after, ChargeRestored: after - v}, nil
}

// Access senses and activates the row at time t; an activation fully
// restores the row's charge (the property VRL-Access exploits).
func (b *Bank) Access(row int, t float64) (RefreshResult, error) {
	v, err := b.sense(row, t)
	if err != nil {
		return RefreshResult{}, err
	}
	b.charge[row] = 1
	b.lastT[row] = t
	return RefreshResult{ChargeBefore: v, ChargeAfter: 1, ChargeRestored: 1 - v}, nil
}

// Violations returns a copy of the integrity violations recorded so far.
// (A copy, like State: the internal slice is live checkpoint state, and an
// aliased return would let callers corrupt it.)
func (b *Bank) Violations() []Violation {
	return append([]Violation(nil), b.violations...)
}

// State is the bank's mutable simulation state: everything a checkpoint
// must capture to resume a run bit-identically. All slices are deep copies.
type State struct {
	Charge     []float64 // normalized charge at LastT, per row
	LastT      []float64 // time of each row's last restore (s)
	Violations []Violation
	Retired    []int // rows quarantined by spare-row remapping, increasing
}

// State snapshots the bank's mutable state.
func (b *Bank) State() State {
	return State{
		Charge:     append([]float64(nil), b.charge...),
		LastT:      append([]float64(nil), b.lastT...),
		Violations: append([]Violation(nil), b.violations...),
		Retired:    b.Retired(),
	}
}

// SetState replaces the bank's mutable state with a snapshot taken from a
// bank of the same geometry. The snapshot is copied, not aliased.
func (b *Bank) SetState(s State) error {
	if len(s.Charge) != b.Geom.Rows || len(s.LastT) != b.Geom.Rows {
		return fmt.Errorf("dram: state has %d/%d rows, bank has %d", len(s.Charge), len(s.LastT), b.Geom.Rows)
	}
	for r, c := range s.Charge {
		if c < 0 || c > 1 {
			return fmt.Errorf("dram: state charge %g for row %d outside [0,1]", c, r)
		}
	}
	for _, r := range s.Retired {
		if r < 0 || r >= b.Geom.Rows {
			return fmt.Errorf("dram: state retires row %d outside [0,%d)", r, b.Geom.Rows)
		}
	}
	copy(b.charge, s.Charge)
	copy(b.lastT, s.LastT)
	b.violations = append(b.violations[:0], s.Violations...)
	for r := range b.retired {
		b.retired[r] = false
	}
	for _, r := range s.Retired {
		b.retired[r] = true
	}
	return nil
}

// CheckAll senses every row at time t and returns the number of rows below
// the sensing limit (recording violations for each). Retired rows are
// skipped: their data lives on a spare. Useful as an end-of-simulation
// integrity sweep.
//
// For the plain-decay configuration the sweep runs as one tight loop over
// the charge/lastT/tret columns, producing the same violations in the same
// order as the scalar path.
func (b *Bank) CheckAll(t float64) (int, error) {
	if b.mod == nil && b.VRT == nil {
		switch b.Decay.(type) {
		case retention.ExpDecay, retention.LinearDecay:
			return b.checkAllPlain(t)
		}
	}
	bad := 0
	for r := 0; r < b.Geom.Rows; r++ {
		if b.retired[r] {
			continue
		}
		v, err := b.sense(r, t)
		if err != nil {
			return bad, err
		}
		if v < retention.SenseLimit {
			bad++
		}
	}
	return bad, nil
}

// checkAllPlain is CheckAll for the unmodulated decay laws, evaluated
// columnar: identical arithmetic, violations appended in the same row order.
func (b *Bank) checkAllPlain(t float64) (int, error) {
	tret := b.retentions()
	exp := true
	if _, lin := b.Decay.(retention.LinearDecay); lin {
		exp = false
	}
	bad := 0
	for r := 0; r < b.Geom.Rows; r++ {
		if b.retired[r] {
			continue
		}
		dt := t - b.lastT[r]
		if dt < 0 {
			return bad, fmt.Errorf("dram: time went backwards for row %d: %.6g < %.6g", r, t, b.lastT[r])
		}
		v := b.charge[r] * decayPlain(exp, dt, tret[r])
		if v < retention.SenseLimit {
			b.violations = append(b.violations, Violation{Row: r, Time: t, Charge: v})
			bad++
		}
	}
	return bad, nil
}
