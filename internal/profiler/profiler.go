// Package profiler simulates retention-time profiling of a DRAM bank, in
// the style of the works the paper builds on (Liu et al. ISCA'13, REAPER
// ISCA'17): write a data pattern, disable refresh for a candidate retention
// interval, read back, and classify each row by the longest interval it
// survives. VRL-DRAM assumes such a profile "is available, e.g., using
// methods in previous works" (Section 3); this package closes that loop so
// the repository's profiles can be MEASURED from a simulated chip instead of
// constructed.
//
// Profiling at "aggressive conditions" (REAPER's key idea) is modeled by
// testing at a margin-extended interval: a row passes the interval T only if
// it still senses correctly after T/Margin, with Margin < 1 giving slack for
// variable retention time and temperature drift.
package profiler

import (
	"fmt"
	"math"

	"vrldram/internal/device"
	"vrldram/internal/dram"
	"vrldram/internal/retention"
)

// Options configures a profiling campaign.
type Options struct {
	// Intervals are the candidate retention intervals tested, in seconds,
	// in increasing order (defaults to the RAIDR bin boundaries plus a
	// generous top interval).
	Intervals []float64
	// Patterns are the data backgrounds written before each test round
	// (defaults to all four of the paper's Section 3.1 patterns; the
	// classification keeps the worst round).
	Patterns []retention.Pattern
	// Margin < 1 extends each tested interval to 1/Margin of its nominal
	// value, REAPER-style profiling at aggressive conditions. Defaults to
	// retention.ProfilerGuardband.
	Margin float64
}

func (o Options) withDefaults() Options {
	if o.Intervals == nil {
		o.Intervals = append(append([]float64{}, retention.RAIDRBins...),
			0.384, 0.512, 0.768, 1.024, 1.536, 2.048, 3.072, 4.096)
	}
	if o.Patterns == nil {
		o.Patterns = retention.Patterns
	}
	if o.Margin == 0 {
		o.Margin = retention.ProfilerGuardband
	}
	return o
}

// Validate reports the first unusable option.
func (o Options) Validate() error {
	if len(o.Intervals) == 0 {
		return fmt.Errorf("profiler: no test intervals")
	}
	prev := 0.0
	for i, iv := range o.Intervals {
		if iv <= prev {
			return fmt.Errorf("profiler: intervals must increase (index %d)", i)
		}
		prev = iv
	}
	if len(o.Patterns) == 0 {
		return fmt.Errorf("profiler: no test patterns")
	}
	if o.Margin <= 0 || o.Margin > 1 {
		return fmt.Errorf("profiler: margin %g outside (0,1]", o.Margin)
	}
	return nil
}

// Result is the outcome of one campaign.
type Result struct {
	// Profile has Profiled set to the measured per-row retention (the
	// largest margin-extended interval each row survived under every
	// pattern) and True copied from the chip under test.
	Profile *retention.BankProfile
	// Rounds is the number of (interval, pattern) test rounds executed.
	Rounds int
	// FailCounts[i] is the number of rows that failed interval i under at
	// least one pattern.
	FailCounts []int
}

// Profile runs the campaign against a simulated chip: a bank whose true
// retention comes from trueProfile. Each round writes one pattern,
// lets the bank decay for the margin-extended interval, and senses every
// row; a row is classified at the largest interval it always survives.
func Profile(trueProfile *retention.BankProfile, decay retention.DecayModel, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if trueProfile == nil {
		return nil, fmt.Errorf("profiler: nil chip profile")
	}
	if decay == nil {
		decay = retention.ExpDecay{}
	}
	rows := trueProfile.Geom.Rows

	// survived[r] = largest interval index the row survived across ALL
	// patterns; -1 if it failed even the shortest.
	survived := make([]int, rows)
	for r := range survived {
		survived[r] = len(opts.Intervals) - 1
	}
	res := &Result{FailCounts: make([]int, len(opts.Intervals))}

	for _, pat := range opts.Patterns {
		bank, err := dram.NewBank(trueProfile, decay, pat)
		if err != nil {
			return nil, err
		}
		for i, iv := range opts.Intervals {
			res.Rounds++
			wait := iv / opts.Margin
			// Write (full restore) at t0, sense at t0+wait. Rounds are laid
			// out back-to-back on the bank's private timeline.
			t0 := float64(res.Rounds) * (opts.Intervals[len(opts.Intervals)-1] / opts.Margin * 2)
			for r := 0; r < rows; r++ {
				if _, err := bank.Access(r, t0); err != nil {
					return nil, err
				}
			}
			failedThisRound := false
			for r := 0; r < rows; r++ {
				v, err := bank.ChargeAt(r, t0+wait)
				if err != nil {
					return nil, err
				}
				if v < retention.SenseLimit {
					failedThisRound = true
					if survived[r] > i-1 {
						survived[r] = i - 1
					}
				}
			}
			if failedThisRound {
				res.FailCounts[i]++
			}
		}
	}

	profiled := make([]float64, rows)
	for r := 0; r < rows; r++ {
		if survived[r] < 0 {
			return nil, fmt.Errorf("profiler: row %d fails even the %v s interval; chip unusable", r, opts.Intervals[0])
		}
		profiled[r] = opts.Intervals[survived[r]]
	}
	res.Profile = &retention.BankProfile{
		Geom:     trueProfile.Geom,
		True:     append([]float64(nil), trueProfile.True...),
		Profiled: profiled,
	}
	return res, nil
}

// ProfileRow runs a targeted single-row campaign against the chip: the
// interval ladder of a full Profile pass, but for one suspect row, closed
// form instead of a bank-wide write/wait/sense loop (the interval test
// "does the row still sense correctly after iv/Margin?" is evaluated
// directly against the decay law at the row's worst-pattern retention).
// It returns the largest interval the row survives every pattern at, or 0
// when the row fails even the shortest interval - the caller's signal that
// no refresh schedule can carry the row and it must be quarantined.
//
// This is the scrubber's diagnose step (internal/scrub Config.Reprofile):
// deterministic, so it can run inside a checkpointed simulation loop.
func ProfileRow(chip *retention.BankProfile, decay retention.DecayModel, row int, opts Options) (float64, error) {
	opts = opts.withDefaults()
	if err := opts.Validate(); err != nil {
		return 0, err
	}
	if chip == nil {
		return 0, fmt.Errorf("profiler: nil chip profile")
	}
	if row < 0 || row >= len(chip.True) {
		return 0, fmt.Errorf("profiler: row %d outside [0,%d)", row, len(chip.True))
	}
	if decay == nil {
		decay = retention.ExpDecay{}
	}
	// The worst pattern bounds every pattern in opts.Patterns, and
	// PatternFactor is multiplicative on retention, so one evaluation at the
	// worst factor matches the keep-the-worst-round classification of a full
	// campaign.
	worst := math.Inf(1)
	for _, p := range opts.Patterns {
		if f := retention.PatternFactor(p); f < worst {
			worst = f
		}
	}
	tret := chip.True[row] * worst
	measured := 0.0
	for _, iv := range opts.Intervals {
		if decay.Factor(iv/opts.Margin, tret) < retention.SenseLimit {
			break
		}
		measured = iv
	}
	return measured, nil
}

// VerifyConservative checks the fundamental profiling guarantee: every
// measured retention must be at most the row's worst-pattern true retention
// (no overestimates, which would be unsafe). It returns the number of
// overestimated rows (0 for a sound profiler).
func VerifyConservative(r *Result) int {
	bad := 0
	worst := retention.WorstPatternFactor()
	for i, measured := range r.Profile.Profiled {
		if measured > r.Profile.True[i]*worst+1e-12 {
			bad++
		}
	}
	return bad
}

// DefaultCampaign profiles a freshly sampled chip of the given geometry and
// seed with default options - the one-call path the examples use.
func DefaultCampaign(geom device.BankGeometry, seed int64) (*Result, error) {
	dist := retention.DefaultCellDistribution()
	chip, err := retention.NewSampledProfile(geom, dist, seed)
	if err != nil {
		return nil, err
	}
	// The chip's "true" retention is what the silicon does; profiling must
	// not peek at the Profiled field, so reset it.
	chip.Profiled = append([]float64(nil), chip.True...)
	return Profile(chip, retention.ExpDecay{}, Options{})
}
