package profiler

import (
	"testing"

	"vrldram/internal/core"
	"vrldram/internal/device"
	"vrldram/internal/dram"
	"vrldram/internal/retention"
	"vrldram/internal/sim"
)

func chip(t *testing.T, rows int, seed int64) *retention.BankProfile {
	t.Helper()
	p, err := retention.NewSampledProfile(device.BankGeometry{Rows: rows, Cols: 32},
		retention.DefaultCellDistribution(), seed)
	if err != nil {
		t.Fatal(err)
	}
	p.Profiled = append([]float64(nil), p.True...) // profiling must not peek
	return p
}

func TestOptionsValidation(t *testing.T) {
	if err := (Options{}).withDefaults().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Options{
		{Intervals: []float64{0.1, 0.1}, Patterns: retention.Patterns, Margin: 0.9},
		{Intervals: []float64{0.2, 0.1}, Patterns: retention.Patterns, Margin: 0.9},
		{Intervals: []float64{0.1}, Patterns: []retention.Pattern{}, Margin: 0.9},
		{Intervals: []float64{0.1}, Patterns: retention.Patterns, Margin: 1.5},
	}
	for i, o := range bad {
		if err := o.Validate(); err == nil {
			t.Errorf("bad options %d not caught", i)
		}
	}
}

func TestProfileIsConservative(t *testing.T) {
	c := chip(t, 512, 11)
	res, err := Profile(c, retention.ExpDecay{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if bad := VerifyConservative(res); bad != 0 {
		t.Fatalf("%d rows overestimated: the profiler is unsound", bad)
	}
	if res.Rounds != len(Options{}.withDefaults().Intervals)*len(retention.Patterns) {
		t.Fatalf("rounds = %d", res.Rounds)
	}
}

func TestProfileQuantizesToIntervals(t *testing.T) {
	c := chip(t, 256, 5)
	opts := Options{}.withDefaults()
	res, err := Profile(c, retention.ExpDecay{}, opts)
	if err != nil {
		t.Fatal(err)
	}
	valid := map[float64]bool{}
	for _, iv := range opts.Intervals {
		valid[iv] = true
	}
	for r, v := range res.Profile.Profiled {
		if !valid[v] {
			t.Fatalf("row %d measured %v, not a tested interval", r, v)
		}
	}
}

func TestProfileMatchesKnownRetention(t *testing.T) {
	// A hand-built chip with exact retention values: the profiler must
	// classify each row at the largest interval whose margin-extended wait
	// the worst pattern survives.
	geom := device.BankGeometry{Rows: 4, Cols: 1}
	c := &retention.BankProfile{
		Geom: geom,
		True: []float64{0.100, 0.200, 0.400, 3.0},
	}
	c.Profiled = append([]float64(nil), c.True...)
	opts := Options{
		Intervals: []float64{0.064, 0.128, 0.192, 0.256},
		Patterns:  []retention.Pattern{retention.PatternAlternating},
		Margin:    0.95,
	}
	res, err := Profile(c, retention.ExpDecay{}, opts)
	if err != nil {
		t.Fatal(err)
	}
	derate := retention.PatternFactor(retention.PatternAlternating) * 0.95 // 0.8075
	for r, measured := range res.Profile.Profiled {
		effective := c.True[r] * derate
		// Largest interval <= effective.
		want := 0.0
		for _, iv := range opts.Intervals {
			if iv <= effective {
				want = iv
			}
		}
		if measured != want {
			t.Errorf("row %d (true %v): measured %v, want %v", r, c.True[r], measured, want)
		}
	}
}

func TestProfileRejectsUnusableChip(t *testing.T) {
	geom := device.BankGeometry{Rows: 1, Cols: 1}
	c := &retention.BankProfile{Geom: geom, True: []float64{0.010}, Profiled: []float64{0.010}}
	if _, err := Profile(c, retention.ExpDecay{}, Options{}); err == nil {
		t.Fatal("a row below the smallest interval must fail the campaign")
	}
}

func TestProfileErrors(t *testing.T) {
	if _, err := Profile(nil, retention.ExpDecay{}, Options{}); err == nil {
		t.Fatal("nil chip must be rejected")
	}
	c := chip(t, 8, 1)
	if _, err := Profile(c, nil, Options{Margin: 2}); err == nil {
		t.Fatal("bad margin must be rejected")
	}
}

func TestDefaultCampaign(t *testing.T) {
	res, err := DefaultCampaign(device.BankGeometry{Rows: 256, Cols: 32}, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Profile.Profiled) != 256 {
		t.Fatalf("profile size %d", len(res.Profile.Profiled))
	}
	if VerifyConservative(res) != 0 {
		t.Fatal("default campaign unsound")
	}
}

// End-to-end: a measured profile drives VRL safely - the closed loop the
// paper assumes.
func TestMeasuredProfileDrivesVRLSafely(t *testing.T) {
	c := chip(t, 1024, 3)
	res, err := Profile(c, retention.ExpDecay{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	p := device.Default90nm()
	rm, err := core.PaperRestoreModel(p, device.PaperBank)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := core.NewVRL(res.Profile, core.Config{Restore: rm})
	if err != nil {
		t.Fatal(err)
	}
	// The real bank stores the worst-case pattern.
	bank, err := dram.NewBank(res.Profile, retention.ExpDecay{}, retention.PatternAlternating)
	if err != nil {
		t.Fatal(err)
	}
	st, err := sim.Run(bank, sched, nil, sim.Options{Duration: 0.768, TCK: p.TCK})
	if err != nil {
		t.Fatal(err)
	}
	if st.Violations != 0 {
		t.Fatalf("measured profile led to %d violations", st.Violations)
	}
	if st.PartialRefreshes == 0 {
		t.Fatal("measured profile should still admit partial refreshes")
	}
}
