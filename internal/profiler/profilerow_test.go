package profiler

import (
	"testing"

	"vrldram/internal/device"
	"vrldram/internal/retention"
)

// TestProfileRowAgreesWithCampaign is the targeted re-profile's soundness
// check: for every row, the closed-form single-row measurement must equal
// what the full write/wait/sense campaign classified the row as.
func TestProfileRowAgreesWithCampaign(t *testing.T) {
	geom := device.BankGeometry{Rows: 256, Cols: 32}
	dist := retention.DefaultCellDistribution()
	chip, err := retention.NewSampledProfile(geom, dist, 7)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Profile(chip, retention.ExpDecay{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < geom.Rows; r++ {
		m, err := ProfileRow(chip, retention.ExpDecay{}, r, Options{})
		if err != nil {
			t.Fatalf("row %d: %v", r, err)
		}
		if m != res.Profile.Profiled[r] {
			t.Fatalf("row %d: ProfileRow %g, campaign measured %g (true %g)",
				r, m, res.Profile.Profiled[r], chip.True[r])
		}
	}
}

func TestProfileRowQuarantineSignal(t *testing.T) {
	chip := &retention.BankProfile{
		Geom: device.BankGeometry{Rows: 2, Cols: 32},
		// Row 0 fails even the shortest interval under the margin; row 1 is
		// generously healthy.
		True:     []float64{0.001, 10},
		Profiled: []float64{0.001, 10},
	}
	m, err := ProfileRow(chip, retention.ExpDecay{}, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if m != 0 {
		t.Fatalf("unusable row measured %g, want 0 (the quarantine signal)", m)
	}
	m, err = ProfileRow(chip, retention.ExpDecay{}, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if m <= 0 {
		t.Fatalf("healthy row measured %g", m)
	}
}

func TestProfileRowErrors(t *testing.T) {
	chip := &retention.BankProfile{
		Geom:     device.BankGeometry{Rows: 1, Cols: 32},
		True:     []float64{1},
		Profiled: []float64{1},
	}
	if _, err := ProfileRow(nil, retention.ExpDecay{}, 0, Options{}); err == nil {
		t.Fatal("nil chip accepted")
	}
	if _, err := ProfileRow(chip, retention.ExpDecay{}, -1, Options{}); err == nil {
		t.Fatal("negative row accepted")
	}
	if _, err := ProfileRow(chip, retention.ExpDecay{}, 1, Options{}); err == nil {
		t.Fatal("out-of-range row accepted")
	}
	if _, err := ProfileRow(chip, retention.ExpDecay{}, 0, Options{Margin: 2}); err == nil {
		t.Fatal("invalid margin accepted")
	}
}
