package singlecell

import (
	"math"
	"testing"

	"vrldram/internal/circuit/analytic"
	"vrldram/internal/device"
)

func TestEqWaveformEndpoints(t *testing.T) {
	p := device.Default90nm()
	m := New(p)
	if v := m.EqBitlineVoltage(0, true); v != p.Vdd {
		t.Fatalf("t=0 high: %v", v)
	}
	if v := m.EqBitlineVoltage(0, false); v != p.Vss {
		t.Fatalf("t=0 low: %v", v)
	}
	if v := m.EqBitlineVoltage(20e-9, true); math.Abs(v-p.Veq()) > 1e-4 {
		t.Fatalf("high bitline does not settle: %v", v)
	}
}

func TestEqWaveformIsPureExponential(t *testing.T) {
	// The single-cell model has no saturation phase: the log-residual is
	// linear in time from t = 0.
	p := device.Default90nm()
	m := New(p)
	veq := p.Veq()
	r1 := math.Log(m.EqBitlineVoltage(0.1e-9, true) - veq)
	r2 := math.Log(m.EqBitlineVoltage(0.2e-9, true) - veq)
	r3 := math.Log(m.EqBitlineVoltage(0.3e-9, true) - veq)
	if math.Abs((r2-r1)-(r3-r2)) > 1e-9 {
		t.Fatal("waveform is not a single exponential")
	}
}

func TestTauEq(t *testing.T) {
	p := device.Default90nm()
	m := New(p)
	tol := 5e-3
	tau := m.TauEq(tol)
	if v := m.EqBitlineVoltage(tau, true); math.Abs(v-p.Veq()) > tol*1.01 {
		t.Fatalf("residual at TauEq: %v", math.Abs(v-p.Veq()))
	}
}

func TestUAndTauPre(t *testing.T) {
	p := device.Default90nm()
	m := New(p)
	if m.U(0) != 1 {
		t.Fatal("U(0) != 1")
	}
	tp := m.TauPre(0.95)
	if got := 1 - m.U(tp); got < 0.95-1e-6 {
		t.Fatalf("development at TauPre: %v", got)
	}
	if m.TauPre(0) != 0 {
		t.Fatal("TauPre(0) != 0")
	}
	if !math.IsInf(m.TauPre(1), 1) {
		t.Fatal("TauPre(1) must be +Inf")
	}
}

func TestGeometryBlindness(t *testing.T) {
	// Table 1's defining property of the single-cell model: its pre-sensing
	// estimate does not depend on the bank geometry (it has no geometry
	// input at all), while the paper's model grows with it.
	p := device.Default90nm()
	sc := New(p)
	scEstimate := sc.TauPre(0.95)
	for _, g := range device.Table1Banks {
		am := analytic.MustNew(p, g)
		if am.TauPre(analytic.PreSenseTargetDefault) < scEstimate {
			t.Errorf("%s: full model should not be faster than the coupling-free single-cell estimate", g)
		}
	}
}

func TestSingleCellUnderestimatesPaperModel(t *testing.T) {
	// The paper's Table 1: single cell reports 6 cycles flat; the full model
	// 7-14. Ours must quantize below the full model for the paper bank.
	p := device.Default90nm()
	sc := New(p)
	am := analytic.MustNew(p, device.PaperBank)
	scCyc := p.Cycles(sc.TauPre(0.95))
	amCyc := p.Cycles(am.TauPre(analytic.PreSenseTargetDefault))
	if scCyc >= amCyc {
		t.Fatalf("single cell %d cycles, full model %d; want strictly below", scCyc, amCyc)
	}
	if scCyc < 4 || scCyc > 8 {
		t.Fatalf("single-cell estimate %d cycles; paper reports 6", scCyc)
	}
}

func TestRestoreVoltage(t *testing.T) {
	p := device.Default90nm()
	m := New(p)
	vPre := 0.6 * p.Vdd
	if v := m.RestoreVoltage(vPre, 0); v != vPre {
		t.Fatal("zero window must not move charge")
	}
	prev := vPre
	for i := 1; i <= 40; i++ {
		v := m.RestoreVoltage(vPre, 50e-9*float64(i)/40)
		if v < prev || v > p.Vdd {
			t.Fatalf("restore not monotone toward Vdd: %v", v)
		}
		prev = v
	}
}
