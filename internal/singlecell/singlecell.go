// Package singlecell implements the single-cell capacitor model of
// Li et al. ("DRAM Yield Analysis and Optimization by a Statistical Design
// Approach", TCAS-I 2011), the prior-work baseline the paper compares its
// analytical model against in Figure 5 and Table 1.
//
// The single-cell model treats every stage of the refresh operation as a
// single first-order RC response of one isolated cell and one nominal
// bitline. It ignores three effects the paper's model captures:
//
//   - the saturation (constant-current) phase of the equalization devices,
//     so its equalization waveform is a pure exponential from t = 0;
//   - bitline-to-bitline and bitline-to-wordline parasitic coupling, and the
//     cyclic dependence of the developed sense signal on neighboring
//     bitlines (paper Eq. 7);
//   - bank geometry: it uses one nominal bitline segment, so its pre-sensing
//     estimate is the same 6 cycles for every bank size in Table 1.
package singlecell

import (
	"math"

	"vrldram/internal/device"
)

// Model evaluates the Li et al. single-cell capacitor model for a device
// parameter set. The model has no bank geometry input by construction.
type Model struct {
	P device.Params
}

// New returns a single-cell model over the given parameters.
func New(p device.Params) *Model { return &Model{P: p} }

// EqBitlineVoltage returns the single-RC equalization waveform at time t.
// Unlike the paper's two-phase model, the equalization device is treated as
// a fixed linear resistance from t = 0, so the waveform is
// Veq + (V0 - Veq) * exp(-t / (Req*Cbl)).
func (m *Model) EqBitlineVoltage(t float64, high bool) float64 {
	p := m.P
	veq := p.Veq()
	v0 := p.Vss
	if high {
		v0 = p.Vdd
	}
	if t <= 0 {
		return v0
	}
	tau := m.eqTau()
	return veq + (v0-veq)*math.Exp(-t/tau)
}

func (m *Model) eqTau() float64 {
	// Fixed linear-region resistance; the single-cell model has no notion of
	// the saturation phase.
	ov := m.P.Vg - m.P.Veq() - m.P.Vtn
	ron := math.Inf(1)
	if ov > 0 {
		ron = 1 / (m.P.BetaN * ov)
	}
	return (m.P.Rbl + ron) * m.P.CblSeg()
}

// TauEq returns the single-RC equalization settling time to within tol
// volts of Veq.
func (m *Model) TauEq(tol float64) float64 {
	gap := m.P.Vdd - m.P.Veq()
	if gap <= tol {
		return 0
	}
	return m.eqTau() * math.Log(gap/tol)
}

// U returns the coupling-free charge-sharing settling function using the
// nominal segment bitline only (no global routing: the single-cell model
// does not know the bank size).
func (m *Model) U(t float64) float64 {
	if t <= 0 {
		return 1
	}
	cs, cbl := m.P.Cs, m.P.CblSeg()
	rpre := m.P.RonAccess + m.P.Rbl
	num := cs*math.Exp(-t/(rpre*cbl)) + cbl*math.Exp(-t/(rpre*cs))
	return num / (cs + cbl)
}

// TauPre returns the single-cell pre-sensing estimate: the time for the
// developed bitline voltage to reach targetFrac of its asymptote, ignoring
// wordline delay, global routing, and coupling. In Table 1 this evaluates
// to the same value for all six bank configurations.
func (m *Model) TauPre(targetFrac float64) float64 {
	if targetFrac <= 0 {
		return 0
	}
	if targetFrac >= 1 {
		return math.Inf(1)
	}
	resid := 1 - targetFrac
	cs, cbl := m.P.Cs, m.P.CblSeg()
	rpre := m.P.RonAccess + m.P.Rbl
	lo, hi := 0.0, rpre*math.Max(cs, cbl)*math.Log(1/resid)*4
	for hi-lo > 1e-15 {
		mid := (lo + hi) / 2
		if m.U(mid) > resid {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// RestoreVoltage returns the single-RC restore response: the cell charges
// toward Vdd with time constant Rpost*(Cs+Cbl) from t = 0, with no sensing
// phase offset.
func (m *Model) RestoreVoltage(vPre, tauPost float64) float64 {
	if tauPost <= 0 {
		return vPre
	}
	tau := m.P.Rpost() * (m.P.Cs + m.P.CblSeg())
	return vPre + (m.P.Vdd-vPre)*(1-math.Exp(-tauPost/tau))
}
