// Package ecc implements the SECDED (single-error-correct, double-error-
// detect) Hamming code standard DRAM modules carry: 64 data bits protected
// by 8 check bits (a (72,64) code). It is the substrate behind the online
// VRT mitigation the paper's ecosystem relies on (AVATAR upgrades a row when
// ECC corrects an error in it), and behind the system-level abstraction the
// refresh simulator uses: a row whose weakest cell has sagged moderately
// reads back with a single-bit error ECC can fix; one that sagged deeply is
// uncorrectable.
package ecc

import (
	"fmt"
	"math/bits"
)

// DataBits and CheckBits describe the (72,64) layout.
const (
	DataBits  = 64
	CheckBits = 8
)

// Codeword is 64 data bits plus the 8 SECDED check bits.
type Codeword struct {
	Data  uint64
	Check uint8
}

// hammingPositions maps each of the 64 data bits to its position in the
// 72-bit extended Hamming codeword (positions that are not powers of two,
// 1-indexed). Computed once at init.
var hammingPositions [DataBits]uint8

func init() {
	pos := uint8(1)
	i := 0
	for i < DataBits {
		if pos&(pos-1) != 0 { // not a power of two: data position
			hammingPositions[i] = pos
			i++
		}
		pos++
	}
}

// Encode computes the SECDED codeword of 64 data bits.
func Encode(data uint64) Codeword {
	var check uint8
	// Hamming parity bits p1,p2,p4,p8,p16,p32,p64 live at power-of-two
	// positions; parity bit k covers positions with bit k set.
	for k := 0; k < 7; k++ {
		mask := uint8(1) << uint(k)
		var p uint8
		for i := 0; i < DataBits; i++ {
			if hammingPositions[i]&mask != 0 && data&(1<<uint(i)) != 0 {
				p ^= 1
			}
		}
		if p != 0 {
			check |= mask
		}
	}
	// Overall parity (the "extended" bit) over data and the 7 Hamming bits.
	overall := uint8(bits.OnesCount64(data)+bits.OnesCount8(check&0x7F)) & 1
	if overall != 0 {
		check |= 0x80
	}
	return Codeword{Data: data, Check: check}
}

// DecodeResult classifies a decode.
type DecodeResult int

// Decode outcomes.
const (
	OK DecodeResult = iota
	Corrected
	Uncorrectable
)

// String names the outcome.
func (r DecodeResult) String() string {
	switch r {
	case OK:
		return "ok"
	case Corrected:
		return "corrected"
	case Uncorrectable:
		return "uncorrectable"
	default:
		return fmt.Sprintf("DecodeResult(%d)", int(r))
	}
}

// Decode checks a (possibly corrupted) codeword, correcting a single flipped
// data or check bit and detecting double flips. It returns the corrected
// data and the classification.
func Decode(cw Codeword) (uint64, DecodeResult) {
	ref := Encode(cw.Data)
	syndrome := (cw.Check ^ ref.Check) & 0x7F
	overallGot := uint8(bits.OnesCount64(cw.Data)+bits.OnesCount8(cw.Check&0x7F)) & 1
	overallStored := (cw.Check >> 7) & 1
	overallErr := overallGot != overallStored

	switch {
	case syndrome == 0 && !overallErr:
		return cw.Data, OK
	case syndrome == 0 && overallErr:
		// The overall parity bit itself flipped.
		return cw.Data, Corrected
	case syndrome != 0 && overallErr:
		// Single-bit error at position `syndrome`.
		for i := 0; i < DataBits; i++ {
			if hammingPositions[i] == syndrome {
				return cw.Data ^ (1 << uint(i)), Corrected
			}
		}
		// The flipped bit was one of the Hamming check bits.
		return cw.Data, Corrected
	default: // syndrome != 0 && !overallErr: double-bit error
		return cw.Data, Uncorrectable
	}
}

// FlipDataBit returns the codeword with one data bit flipped (fault
// injection helper).
func (cw Codeword) FlipDataBit(i int) Codeword {
	out := cw
	out.Data ^= 1 << uint(i%DataBits)
	return out
}

// FlipCheckBit returns the codeword with one check bit flipped.
func (cw Codeword) FlipCheckBit(i int) Codeword {
	out := cw
	out.Check ^= 1 << uint(i%CheckBits)
	return out
}

// --- System-level charge thresholds -------------------------------------------

// ChargeClassifier maps a row's sensed weakest-cell charge to an ECC
// outcome: above the sensing limit all bits read correctly; in the window
// just below it, only the weakest cell has flipped (one bit per ECC word -
// correctable); deeper sag takes neighbouring weak cells with it and
// overwhelms SECDED.
type ChargeClassifier struct {
	// SenseLimit is the correct-read threshold (normalized charge).
	SenseLimit float64
	// CorrectableFloor is the charge above which a failed sense is still a
	// single-bit (correctable) error.
	CorrectableFloor float64
}

// DefaultClassifier uses the repository's 50% sensing limit with a
// correctable window down to 35% of charge.
func DefaultClassifier() ChargeClassifier {
	return ChargeClassifier{SenseLimit: 0.5, CorrectableFloor: 0.35}
}

// Validate reports the first unusable threshold.
func (c ChargeClassifier) Validate() error {
	if !(0 < c.CorrectableFloor && c.CorrectableFloor < c.SenseLimit && c.SenseLimit < 1) {
		return fmt.Errorf("ecc: thresholds must satisfy 0 < floor < limit < 1, got %+v", c)
	}
	return nil
}

// Classify maps a sensed normalized charge to a decode outcome.
func (c ChargeClassifier) Classify(charge float64) DecodeResult {
	switch {
	case charge >= c.SenseLimit:
		return OK
	case charge >= c.CorrectableFloor:
		return Corrected
	default:
		return Uncorrectable
	}
}
