package ecc

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeClean(t *testing.T) {
	f := func(data uint64) bool {
		cw := Encode(data)
		got, res := Decode(cw)
		return got == data && res == OK
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSingleDataBitFlipCorrected(t *testing.T) {
	f := func(data uint64, bit uint8) bool {
		cw := Encode(data).FlipDataBit(int(bit))
		got, res := Decode(cw)
		return got == data && res == Corrected
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSingleCheckBitFlipCorrected(t *testing.T) {
	f := func(data uint64, bit uint8) bool {
		cw := Encode(data).FlipCheckBit(int(bit))
		got, res := Decode(cw)
		// A flipped check bit never corrupts the data.
		return got == data && res == Corrected
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestDoubleDataBitFlipDetected(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		data := rng.Uint64()
		b1 := rng.Intn(DataBits)
		b2 := rng.Intn(DataBits)
		if b1 == b2 {
			continue
		}
		cw := Encode(data).FlipDataBit(b1).FlipDataBit(b2)
		_, res := Decode(cw)
		if res != Uncorrectable {
			t.Fatalf("double flip (%d,%d) of %x classified %v", b1, b2, data, res)
		}
	}
}

func TestDataPlusCheckDoubleFlipDetected(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	miss := 0
	const n = 500
	for i := 0; i < n; i++ {
		data := rng.Uint64()
		cw := Encode(data).FlipDataBit(rng.Intn(DataBits)).FlipCheckBit(rng.Intn(7))
		got, res := Decode(cw)
		// SECDED guarantees detection of any double error; it must never
		// silently return wrong data as OK or "correct" to a wrong value.
		if res == OK && got != data {
			t.Fatalf("silent corruption")
		}
		if res == Corrected && got != data {
			miss++
		}
	}
	if miss > 0 {
		t.Fatalf("%d/%d data+check double flips miscorrected", miss, n)
	}
}

func TestHammingPositionsUnique(t *testing.T) {
	seen := map[uint8]bool{}
	for i, p := range hammingPositions {
		if p == 0 || p&(p-1) == 0 {
			t.Fatalf("data bit %d at invalid position %d", i, p)
		}
		if seen[p] {
			t.Fatalf("duplicate position %d", p)
		}
		seen[p] = true
	}
}

func TestDecodeResultString(t *testing.T) {
	if OK.String() != "ok" || Corrected.String() != "corrected" || Uncorrectable.String() != "uncorrectable" {
		t.Fatal("result names wrong")
	}
	if DecodeResult(9).String() == "" {
		t.Fatal("unknown result must still stringify")
	}
}

func TestChargeClassifier(t *testing.T) {
	c := DefaultClassifier()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		charge float64
		want   DecodeResult
	}{
		{0.9, OK},
		{0.5, OK}, // exactly at the sensing limit: a correct read, not an error
		{math.Nextafter(0.5, 0), Corrected}, // first representable charge below the limit
		{0.49, Corrected},
		{0.35, Corrected}, // exactly at the correctable floor: still single-bit
		{math.Nextafter(0.35, 0), Uncorrectable},
		{0.34, Uncorrectable},
		{0.0, Uncorrectable},
	}
	for _, tc := range cases {
		if got := c.Classify(tc.charge); got != tc.want {
			t.Errorf("Classify(%v) = %v, want %v", tc.charge, got, tc.want)
		}
	}
	bad := ChargeClassifier{SenseLimit: 0.3, CorrectableFloor: 0.5}
	if err := bad.Validate(); err == nil {
		t.Fatal("inverted thresholds must be rejected")
	}
}
