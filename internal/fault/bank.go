package fault

import (
	"fmt"

	"vrldram/internal/retention"
)

// Bank-level injectors: retention loss the profile knows nothing about.
// Both reuse the retention.VRT telegraph process (attach with bank.SetVRT),
// so the decay integration stays exact and deterministic.

// TransientWeakCells models metastable cells toggling into a low-retention
// state: frac of rows (hash-selected by the VRT process) retain retFactor
// times less while low, dwelling ~dwell seconds per state. Unlike the
// default VRT model it does not exclude short-retention rows - a fault
// injector gets to hit the rows that hurt.
func TransientWeakCells(frac, retFactor, dwell float64, seed int64) (*retention.VRT, error) {
	v := &retention.VRT{
		AffectedFrac: frac,
		LowFactor:    retFactor,
		MeanDwell:    dwell,
		MinRetention: 0,
		Seed:         seed,
	}
	if err := v.Validate(); err != nil {
		return nil, fmt.Errorf("fault: %w", err)
	}
	return v, nil
}

// DefaultTransientWeakCells hits 5% of rows with a 0.55x retention low
// state dwelling 10 s - effectively a persistent excursion over a sub-second
// simulation window, active from t = 0 for roughly half the affected rows
// (telegraph phase decides which).
func DefaultTransientWeakCells(seed int64) *retention.VRT {
	v, err := TransientWeakCells(0.05, 0.55, 10, seed)
	if err != nil {
		panic(err) // unreachable: the defaults validate
	}
	return v
}

// TemperatureExcursion returns a copy of the profile whose TRUE retention
// is derated for operation at tempC while the PROFILED values still claim
// the profiling temperature (m.RefC): the controller schedules from a
// profile measured on a cooler chip than the one it is driving. Cooler
// operation (tempC < m.RefC) only adds margin and is returned unchanged in
// spirit (scale > 1).
func TemperatureExcursion(p *retention.BankProfile, m retention.TempModel, tempC float64) (*retention.BankProfile, error) {
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("fault: %w", err)
	}
	s := m.Scale(tempC)
	out := &retention.BankProfile{
		Geom:     p.Geom,
		True:     make([]float64, len(p.True)),
		Profiled: p.Profiled,
	}
	for i, t := range p.True {
		out.True[i] = t * s
	}
	return out, nil
}
