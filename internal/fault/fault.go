// Package fault provides deterministic, seedable fault injectors for the
// refresh simulator: wrappers and profile transformations that model the
// ways retention-aware refresh goes wrong in the field. VRL-DRAM's safety
// rests on the retention profile being right; the literature the paper
// builds on (AVATAR, REAPER) exists precisely because profiles drift under
// VRT and temperature and because hardware itself degrades. Each injector
// here models one such failure class:
//
//   - CorruptTrace: a trace.Source wrapper emitting out-of-order, garbage
//     and out-of-range records, or truncating the stream mid-run (a broken
//     trace capture or transport),
//   - MisBinProfile: a stale or optimistic retention profile that places a
//     fraction of rows one bin slower than they can sustain,
//   - TransientWeakCells / TemperatureExcursion: bank-level retention loss
//     (metastable cells toggling low, or operation hotter than profiling
//     assumed),
//   - InjectRefreshFaults: a core.Scheduler wrapper that truncates or drops
//     a fraction of refresh operations (a marginal charge pump delivering
//     partial restores).
//
// All injectors are deterministic for a given seed, so every failure a test
// observes is reproducible.
package fault

import "math/rand"

// splitmix64 is the avalanche hash shared by the stateless injectors; it
// decorrelates (seed, counter) pairs into uniform 64-bit values.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// unit maps (seed, counter) to [0, 1).
func unit(seed int64, counter uint64) float64 {
	return float64(splitmix64(uint64(seed)^splitmix64(counter))>>11) / float64(1<<53)
}

// newRNG returns the seeded generator the stream-shaped injectors use.
func newRNG(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
