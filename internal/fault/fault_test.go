package fault

import (
	"io"
	"math"
	"testing"

	"vrldram/internal/core"
	"vrldram/internal/device"
	"vrldram/internal/retention"
	"vrldram/internal/trace"
)

func testProfile(t *testing.T) *retention.BankProfile {
	t.Helper()
	p, err := retention.NewPaperProfile(retention.DefaultCellDistribution(), 42)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func flatTrace(n int, dt float64) []trace.Record {
	recs := make([]trace.Record, n)
	for i := range recs {
		recs[i] = trace.Record{Time: float64(i) * dt, Op: trace.Read, Row: i % 64}
	}
	return recs
}

func drain(t *testing.T, src trace.Source) []trace.Record {
	t.Helper()
	var out []trace.Record
	for {
		rec, err := src.Next()
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, rec)
	}
}

func TestTraceCorruptorDeterministicAndCounted(t *testing.T) {
	run := func() ([]trace.Record, int64) {
		c, err := CorruptTrace(trace.NewSliceSource(flatTrace(2000, 1e-4)), DefaultTraceFaults(7))
		if err != nil {
			t.Fatal(err)
		}
		return drain(t, c), c.FaultsInjected()
	}
	recs, faults := run()
	if faults == 0 {
		t.Fatal("default rates injected nothing over 2000 records")
	}
	if got := int64(len(recs)); got != 2000 {
		t.Fatalf("corruptor dropped records: %d of 2000", got)
	}
	// Count each corruption class directly off the stream.
	var reordered, garbage, outOfRange int64
	last := math.Inf(-1)
	for _, r := range recs {
		switch {
		case r.Time < last:
			reordered++
		case r.Op != trace.Read:
			garbage++
		case r.Row >= 64:
			outOfRange++
		default:
			last = r.Time
		}
	}
	if reordered == 0 || garbage == 0 || outOfRange == 0 {
		t.Fatalf("all three classes should appear: reorder=%d garbage=%d range=%d", reordered, garbage, outOfRange)
	}
	if reordered+garbage+outOfRange != faults {
		t.Fatalf("stream shows %d corruptions, counter says %d", reordered+garbage+outOfRange, faults)
	}
	recs2, faults2 := run()
	if faults2 != faults {
		t.Fatalf("not deterministic: %d vs %d faults", faults, faults2)
	}
	for i := range recs {
		if recs[i] != recs2[i] {
			t.Fatalf("record %d differs between identical runs", i)
		}
	}
}

func TestTraceCorruptorTruncates(t *testing.T) {
	c, err := CorruptTrace(trace.NewSliceSource(flatTrace(100, 1e-4)), TraceFaults{TruncateAfter: 40, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(drain(t, c)); got != 40 {
		t.Fatalf("delivered %d records, want truncation at 40", got)
	}
	if _, err := c.Next(); err != io.EOF {
		t.Fatalf("after truncation want io.EOF, got %v", err)
	}
}

func TestTraceFaultsValidate(t *testing.T) {
	if _, err := CorruptTrace(trace.Empty{}, TraceFaults{GarbageRate: 1.5}); err == nil {
		t.Fatal("rate > 1 accepted")
	}
	if _, err := CorruptTrace(trace.Empty{}, TraceFaults{TruncateAfter: -1}); err == nil {
		t.Fatal("negative truncation accepted")
	}
}

func TestMisBinProfile(t *testing.T) {
	prof := testProfile(t)
	out, n, err := MisBinProfile(prof, 0.05, retention.RAIDRBins, 11)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("no rows mis-binned at 5% over 8192 rows")
	}
	if &out.True[0] != &prof.True[0] {
		t.Fatal("true retention must be shared: the silicon does not read the datasheet")
	}
	changed := 0
	for r := range out.Profiled {
		if out.Profiled[r] == prof.Profiled[r] {
			continue
		}
		changed++
		was, err := retention.BinPeriod(prof.Profiled[r], retention.RAIDRBins)
		if err != nil {
			t.Fatal(err)
		}
		now, err := retention.BinPeriod(out.Profiled[r], retention.RAIDRBins)
		if err != nil {
			t.Fatal(err)
		}
		if now <= was {
			t.Fatalf("row %d: mis-bin moved %g -> %g, want strictly slower", r, was, now)
		}
	}
	if changed != n {
		t.Fatalf("reported %d mis-binned rows, profile shows %d", n, changed)
	}
	// Determinism.
	_, n2, err := MisBinProfile(prof, 0.05, retention.RAIDRBins, 11)
	if err != nil {
		t.Fatal(err)
	}
	if n2 != n {
		t.Fatalf("not deterministic: %d vs %d", n, n2)
	}
	if _, _, err := MisBinProfile(prof, -0.1, nil, 1); err == nil {
		t.Fatal("negative fraction accepted")
	}
}

func TestTransientWeakCells(t *testing.T) {
	v, err := TransientWeakCells(0.2, 0.5, 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	if v.MinRetention != 0 {
		t.Fatal("fault injector must be allowed to hit short-retention rows")
	}
	affected := 0
	for r := 0; r < 1000; r++ {
		if v.Affected(r, 0.080) {
			affected++
		}
	}
	if affected < 100 || affected > 300 {
		t.Fatalf("affected %d of 1000 rows at frac 0.2", affected)
	}
	if _, err := TransientWeakCells(0.2, 1.5, 10, 3); err == nil {
		t.Fatal("low factor > 1 accepted")
	}
}

func TestTemperatureExcursion(t *testing.T) {
	prof := testProfile(t)
	m := retention.DefaultTempModel()
	hot, err := TemperatureExcursion(prof, m, m.RefC+10)
	if err != nil {
		t.Fatal(err)
	}
	for r := range hot.True {
		if want := prof.True[r] * 0.5; math.Abs(hot.True[r]-want) > 1e-12*want {
			t.Fatalf("row %d: true retention %g, want halved %g", r, hot.True[r], want)
		}
	}
	if &hot.Profiled[0] != &prof.Profiled[0] {
		t.Fatal("profiled retention must still claim the profiling temperature")
	}
	if _, err := TemperatureExcursion(prof, retention.TempModel{RefC: 85}, 95); err == nil {
		t.Fatal("invalid temp model accepted")
	}
}

func TestRefreshInjector(t *testing.T) {
	p := device.Default90nm()
	rm, err := core.PaperRestoreModel(p, device.PaperBank)
	if err != nil {
		t.Fatal(err)
	}
	inner, err := core.NewJEDEC(0.064, rm)
	if err != nil {
		t.Fatal(err)
	}
	inj, err := InjectRefreshFaults(inner, RefreshFaults{Rate: 0.1, AlphaFactor: 0.5, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	if inj.Period(0) != inner.Period(0) || inj.MPRSF(0) != inner.MPRSF(0) {
		t.Fatal("injector must not perturb the schedule, only the operations")
	}
	truncated := 0
	for i := 0; i < 1000; i++ {
		op := inj.RefreshOp(i%64, float64(i)*1e-3)
		switch op.Alpha {
		case rm.AlphaFull:
		case rm.AlphaFull * 0.5:
			truncated++
		default:
			t.Fatalf("op %d: alpha %g is neither nominal nor truncated", i, op.Alpha)
		}
	}
	if truncated < 50 || truncated > 200 {
		t.Fatalf("truncated %d of 1000 ops at rate 0.1", truncated)
	}
	if inj.FaultsInjected() != int64(truncated) {
		t.Fatalf("counter %d, stream shows %d", inj.FaultsInjected(), truncated)
	}
	if _, err := InjectRefreshFaults(inner, RefreshFaults{Rate: 2}); err == nil {
		t.Fatal("rate > 1 accepted")
	}
	if _, err := InjectRefreshFaults(inner, RefreshFaults{Rate: 0.5, AlphaFactor: 1}); err == nil {
		t.Fatal("AlphaFactor 1 (no-op fault) accepted")
	}
}
