package fault

import (
	"fmt"
	"net"
	"sync"
	"time"
)

// This file extends the injector family to the service transport
// (internal/serve): a deterministic flaky-connection wrapper modelling the
// network failures a long-lived simulation service must survive - mid-frame
// cuts, stalls long enough to look half-open, and byte corruption that the
// wire protocol's CRC must catch. Like every injector in this package, a
// given (seed, faults) configuration misbehaves identically on every run.

// ConnFaults configures one connection's misbehavior. The zero value injects
// nothing.
type ConnFaults struct {
	// CutAfterBytes hard-closes the connection after this many bytes have
	// been written by the wrapped side (0 = never). Cuts land mid-frame by
	// construction: the threshold ignores frame boundaries.
	CutAfterBytes int64
	// StallEvery stalls the connection for StallFor once per every
	// StallEvery bytes written (0 = never). Stalls exercise heartbeat and
	// idle-timeout paths without killing the connection.
	StallEvery int64
	StallFor   time.Duration
	// GarbageRate flips one byte per write with this probability (0 = never),
	// corrupting frames in flight; the receiver's CRC check must reject
	// them.
	GarbageRate float64
	// Seed drives the deterministic corruption choices.
	Seed int64
}

// FlakyConn wraps a net.Conn with deterministic write-side faults. Reads
// pass through untouched: in the serve tests each endpoint wraps its own
// connection, so write-side faults cover both directions of the wire.
type FlakyConn struct {
	net.Conn
	faults ConnFaults

	mu      sync.Mutex
	written int64
	events  uint64 // corruption decision counter (seed, counter) -> unit
	cut     bool
}

// NewFlakyConn wraps nc.
func NewFlakyConn(nc net.Conn, faults ConnFaults) *FlakyConn {
	return &FlakyConn{Conn: nc, faults: faults}
}

// Write applies the configured faults, then forwards to the wrapped
// connection.
func (f *FlakyConn) Write(p []byte) (int, error) {
	f.mu.Lock()
	if f.cut {
		f.mu.Unlock()
		return 0, fmt.Errorf("fault: connection cut")
	}

	// Stall first: a stalled connection is alive but silent.
	var stall time.Duration
	if f.faults.StallEvery > 0 && f.faults.StallFor > 0 {
		before := f.written / f.faults.StallEvery
		after := (f.written + int64(len(p))) / f.faults.StallEvery
		if after > before {
			stall = f.faults.StallFor
		}
	}

	// Cut mid-frame: write only the bytes up to the threshold, then die.
	n := len(p)
	cutNow := false
	if f.faults.CutAfterBytes > 0 && f.written+int64(n) >= f.faults.CutAfterBytes {
		n = int(f.faults.CutAfterBytes - f.written)
		if n < 0 {
			n = 0
		}
		cutNow = true
	}

	buf := p[:n]
	if f.faults.GarbageRate > 0 && n > 0 {
		f.events++
		if unit(f.faults.Seed, f.events) < f.faults.GarbageRate {
			f.events++
			i := int(splitmix64(uint64(f.faults.Seed)^splitmix64(f.events)) % uint64(n))
			buf = append([]byte(nil), p[:n]...)
			buf[i] ^= 0x55
		}
	}
	f.written += int64(n)
	f.mu.Unlock()

	if stall > 0 {
		time.Sleep(stall)
	}
	wrote, err := f.Conn.Write(buf)
	if cutNow {
		f.mu.Lock()
		f.cut = true
		f.mu.Unlock()
		f.Conn.Close()
		if err == nil {
			err = fmt.Errorf("fault: connection cut after %d bytes", f.faults.CutAfterBytes)
		}
	}
	return wrote, err
}

// NewFlakyDialer wraps a dial function so that the i-th established
// connection (i from 0) gets faults(i). Passing a ConnFaults zero value for
// an attempt lets that connection run clean - the usual shape is "first K
// connections die, then one succeeds", which exercises the client's resume
// path deterministically.
func NewFlakyDialer(dial func() (net.Conn, error), faults func(attempt int) ConnFaults) func() (net.Conn, error) {
	var mu sync.Mutex
	attempt := 0
	return func() (net.Conn, error) {
		mu.Lock()
		i := attempt
		attempt++
		mu.Unlock()
		nc, err := dial()
		if err != nil {
			return nil, err
		}
		f := faults(i)
		if f == (ConnFaults{}) {
			return nc, nil
		}
		return NewFlakyConn(nc, f), nil
	}
}
