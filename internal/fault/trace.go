package fault

import (
	"fmt"
	"io"

	"vrldram/internal/trace"
)

// TraceFaults configures the trace corruptor. Rates are per-record
// probabilities; a record suffers at most one corruption.
type TraceFaults struct {
	// ReorderRate steps a record's timestamp backwards past its predecessor,
	// violating the time-ordering contract custom Sources are trusted with.
	ReorderRate float64
	// GarbageRate replaces the record's op with an invalid byte.
	GarbageRate float64
	// OutOfRangeRate replaces the row with one far outside the bank.
	OutOfRangeRate float64
	// TruncateAfter, when positive, ends the stream (io.EOF) after this many
	// records have been delivered, modeling a capture cut off mid-run.
	TruncateAfter int64
	Seed          int64
}

// DefaultTraceFaults corrupts ~3% of records and truncates nothing.
func DefaultTraceFaults(seed int64) TraceFaults {
	return TraceFaults{ReorderRate: 0.01, GarbageRate: 0.01, OutOfRangeRate: 0.01, Seed: seed}
}

// Validate reports the first unusable rate.
func (f TraceFaults) Validate() error {
	for _, r := range []float64{f.ReorderRate, f.GarbageRate, f.OutOfRangeRate} {
		if r < 0 || r > 1 {
			return fmt.Errorf("fault: trace fault rate %g outside [0,1]", r)
		}
	}
	if f.TruncateAfter < 0 {
		return fmt.Errorf("fault: TruncateAfter must be non-negative, got %d", f.TruncateAfter)
	}
	return nil
}

// TraceCorruptor wraps a trace.Source and corrupts its stream.
type TraceCorruptor struct {
	src      trace.Source
	f        TraceFaults
	rngState int64
	n        int64 // records delivered
	faults   int64
	lastTime float64
}

// CorruptTrace wraps src with the given fault model.
func CorruptTrace(src trace.Source, f TraceFaults) (*TraceCorruptor, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	return &TraceCorruptor{src: src, f: f}, nil
}

// Next implements trace.Source.
func (c *TraceCorruptor) Next() (trace.Record, error) {
	if c.f.TruncateAfter > 0 && c.n >= c.f.TruncateAfter {
		return trace.Record{}, io.EOF
	}
	rec, err := c.src.Next()
	if err != nil {
		return rec, err
	}
	c.n++
	u := unit(c.f.Seed, uint64(c.n))
	switch {
	case u < c.f.ReorderRate:
		// Step the timestamp behind the previous record.
		rec.Time = c.lastTime - 1e-3
		if rec.Time < 0 {
			rec.Time = 0 // still mis-ordered relative to a later lastTime
		}
		c.faults++
	case u < c.f.ReorderRate+c.f.GarbageRate:
		rec.Op = '?'
		c.faults++
	case u < c.f.ReorderRate+c.f.GarbageRate+c.f.OutOfRangeRate:
		rec.Row = rec.Row + 1<<28
		c.faults++
	default:
		c.lastTime = rec.Time
	}
	return rec, nil
}

// FaultsInjected implements core.FaultCounter.
func (c *TraceCorruptor) FaultsInjected() int64 { return c.faults }
