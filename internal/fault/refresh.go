package fault

import (
	"fmt"

	"vrldram/internal/core"
)

// RefreshFaults configures the refresh-operation injector: a marginal
// charge pump that delivers weak restores on a fraction of operations.
type RefreshFaults struct {
	// Rate is the per-operation probability of a truncated restore.
	Rate float64
	// AlphaFactor multiplies the operation's restore coefficient when the
	// fault fires: 0.5 models a half-strength restore, 0 a dropped refresh
	// (the row is sensed but nothing is written back).
	AlphaFactor float64
	Seed        int64
}

// DefaultRefreshFaults truncates 3% of operations to half strength.
func DefaultRefreshFaults(seed int64) RefreshFaults {
	return RefreshFaults{Rate: 0.03, AlphaFactor: 0.5, Seed: seed}
}

// Validate reports the first unusable parameter.
func (f RefreshFaults) Validate() error {
	if f.Rate < 0 || f.Rate > 1 {
		return fmt.Errorf("fault: refresh fault rate %g outside [0,1]", f.Rate)
	}
	if f.AlphaFactor < 0 || f.AlphaFactor >= 1 {
		return fmt.Errorf("fault: AlphaFactor %g outside [0,1)", f.AlphaFactor)
	}
	return nil
}

// RefreshInjector wraps a core.Scheduler and weakens a fraction of the
// refresh operations it emits. It forwards every optional capability of the
// wrapped scheduler (Upgrader, Demoter, SenseMonitor, GuardReporter), so it
// can sit above a guard in the stack: faults then hit the guard's synthetic
// probation refreshes too, as a failing charge pump would.
type RefreshInjector struct {
	inner  core.Scheduler
	f      RefreshFaults
	n      uint64
	faults int64
}

// InjectRefreshFaults wraps the scheduler.
func InjectRefreshFaults(inner core.Scheduler, f RefreshFaults) (*RefreshInjector, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	return &RefreshInjector{inner: inner, f: f}, nil
}

// Name implements core.Scheduler.
func (s *RefreshInjector) Name() string { return s.inner.Name() + "+refresh-faults" }

// Period implements core.Scheduler.
func (s *RefreshInjector) Period(row int) float64 { return s.inner.Period(row) }

// MPRSF implements core.Scheduler.
func (s *RefreshInjector) MPRSF(row int) int { return s.inner.MPRSF(row) }

// OnAccess implements core.Scheduler.
func (s *RefreshInjector) OnAccess(row int, now float64) { s.inner.OnAccess(row, now) }

// RefreshOp implements core.Scheduler, weakening a seed-selected fraction
// of the operations the wrapped scheduler emits.
func (s *RefreshInjector) RefreshOp(row int, now float64) core.Op {
	op := s.inner.RefreshOp(row, now)
	s.n++
	if unit(s.f.Seed, s.n) < s.f.Rate {
		op.Alpha *= s.f.AlphaFactor
		s.faults++
	}
	return op
}

// FaultsInjected implements core.FaultCounter.
func (s *RefreshInjector) FaultsInjected() int64 {
	total := s.faults
	if fc, ok := s.inner.(core.FaultCounter); ok {
		total += fc.FaultsInjected()
	}
	return total
}

// OnSense forwards margin telemetry to a wrapped guard.
func (s *RefreshInjector) OnSense(row int, now, charge float64) {
	if m, ok := s.inner.(core.SenseMonitor); ok {
		m.OnSense(row, now, charge)
	}
}

// Demote forwards to a wrapped core.Demoter.
func (s *RefreshInjector) Demote(row int) {
	if d, ok := s.inner.(core.Demoter); ok {
		d.Demote(row)
	}
}

// Upgrade forwards to a wrapped core.Upgrader.
func (s *RefreshInjector) Upgrade(row int) {
	if u, ok := s.inner.(core.Upgrader); ok {
		u.Upgrade(row)
	}
}

// Promote forwards to a wrapped core.Promoter, so a patrol scrubber can
// heal rows through an injector sitting above the guard.
func (s *RefreshInjector) Promote(row int) {
	if p, ok := s.inner.(core.Promoter); ok {
		p.Promote(row)
	}
}

// GuardSnapshot forwards to a wrapped core.GuardReporter.
func (s *RefreshInjector) GuardSnapshot(now float64) core.GuardStats {
	if g, ok := s.inner.(core.GuardReporter); ok {
		return g.GuardSnapshot(now)
	}
	return core.GuardStats{}
}
