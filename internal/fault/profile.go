package fault

import (
	"fmt"

	"vrldram/internal/retention"
)

// MisBinProfile returns a copy of the profile in which a seed-selected
// fraction of rows report an optimistic PROFILED retention: each victim's
// profiled value is inflated just past the next-slower bin boundary, so a
// scheduler consuming it places the row one bin slower than it can sustain.
// True retention is untouched - the silicon does not read the datasheet.
// This models a stale profile (the row drifted since profiling) or an
// insufficiently margined profiler. Rows already in the top bin are left
// alone (there is no slower bin to mis-place them into).
//
// It returns the corrupted profile and the number of rows mis-binned.
func MisBinProfile(p *retention.BankProfile, frac float64, bins []float64, seed int64) (*retention.BankProfile, int, error) {
	if frac < 0 || frac > 1 {
		return nil, 0, fmt.Errorf("fault: mis-bin fraction %g outside [0,1]", frac)
	}
	if len(bins) == 0 {
		bins = retention.RAIDRBins
	}
	sorted := retention.SortedBins(bins)
	out := &retention.BankProfile{
		Geom:     p.Geom,
		True:     p.True,
		Profiled: append([]float64(nil), p.Profiled...),
	}
	rng := newRNG(seed)
	injected := 0
	for r := range out.Profiled {
		if rng.Float64() >= frac {
			continue
		}
		cur, err := retention.BinPeriod(out.Profiled[r], sorted)
		if err != nil {
			return nil, 0, fmt.Errorf("fault: row %d: %w", r, err)
		}
		next := -1.0
		for i, b := range sorted {
			if b == cur && i+1 < len(sorted) {
				next = sorted[i+1]
				break
			}
		}
		if next < 0 {
			continue // top bin: nothing slower to claim
		}
		out.Profiled[r] = next * 1.001
		injected++
	}
	return out, injected, nil
}
