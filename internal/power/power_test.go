package power

import (
	"testing"

	"vrldram/internal/device"
	"vrldram/internal/sim"
)

func TestDefaultModelValidates(t *testing.T) {
	m := Default90nm(device.Default90nm(), device.PaperBank)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesBadCoefficients(t *testing.T) {
	base := Default90nm(device.Default90nm(), device.PaperBank)
	muts := []func(*Model){
		func(m *Model) { m.ActivationEnergy = 0 },
		func(m *Model) { m.PeripheralPower = -1 },
		func(m *Model) { m.RestoreEnergyPerRow = 0 },
	}
	for i, mut := range muts {
		m := base
		mut(&m)
		if err := m.Validate(); err == nil {
			t.Errorf("mutation %d not caught", i)
		}
	}
}

func TestRefreshEnergyBreakdown(t *testing.T) {
	p := device.Default90nm()
	m := Default90nm(p, device.PaperBank)
	st := sim.Stats{
		Scheduler:        "test",
		Duration:         0.768,
		FullRefreshes:    1000,
		PartialRefreshes: 500,
		BusyCycles:       1000*19 + 500*11,
		ChargeRestored:   300,
	}
	b, err := m.RefreshEnergy(st, p.TCK)
	if err != nil {
		t.Fatal(err)
	}
	if b.Total != b.Activation+b.Peripheral+b.Restore {
		t.Fatal("breakdown does not sum")
	}
	if b.Activation != m.ActivationEnergy*1500 {
		t.Fatalf("activation = %v", b.Activation)
	}
	if b.Peripheral != m.PeripheralPower*float64(st.BusyCycles)*p.TCK {
		t.Fatalf("peripheral = %v", b.Peripheral)
	}
	if b.Restore != m.RestoreEnergyPerRow*300 {
		t.Fatalf("restore = %v", b.Restore)
	}
	if b.AvgPower <= 0 {
		t.Fatal("average power must be positive")
	}
	if b.Scheduler != "test" {
		t.Fatal("scheduler label lost")
	}
}

func TestRefreshEnergyErrors(t *testing.T) {
	p := device.Default90nm()
	m := Default90nm(p, device.PaperBank)
	if _, err := m.RefreshEnergy(sim.Stats{}, 0); err == nil {
		t.Fatal("zero tck must be rejected")
	}
	bad := m
	bad.ActivationEnergy = 0
	if _, err := bad.RefreshEnergy(sim.Stats{}, p.TCK); err == nil {
		t.Fatal("invalid model must be rejected")
	}
}

func TestPartialRefreshSavesLessPowerThanTime(t *testing.T) {
	// The paper's structure: a partial refresh is 11/19 of the time but,
	// because the per-op activation energy is unchanged, more than 11/19 of
	// the energy.
	p := device.Default90nm()
	m := Default90nm(p, device.PaperBank)
	full := sim.Stats{Duration: 1, FullRefreshes: 1, BusyCycles: 19, ChargeRestored: 0.2}
	part := sim.Stats{Duration: 1, PartialRefreshes: 1, BusyCycles: 11, ChargeRestored: 0.19}
	ef, err := m.RefreshEnergy(full, p.TCK)
	if err != nil {
		t.Fatal(err)
	}
	ep, err := m.RefreshEnergy(part, p.TCK)
	if err != nil {
		t.Fatal(err)
	}
	timeRatio := 11.0 / 19.0
	energyRatio := ep.Total / ef.Total
	if energyRatio <= timeRatio {
		t.Fatalf("energy ratio %v should exceed time ratio %v", energyRatio, timeRatio)
	}
	if energyRatio >= 1 {
		t.Fatalf("partial refresh must still save energy: ratio %v", energyRatio)
	}
}
