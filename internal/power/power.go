// Package power estimates DRAM refresh energy in the style of the DRAMPower
// tool the paper uses (Chandrasekar et al., DAC 2013), at the granularity
// the VRL-DRAM evaluation needs: refresh energy splits into
//
//   - a peripheral component proportional to how long the bank is busy
//     refreshing (row decoders, wordline drivers, sense-amp bias - the
//     IDD5 current above background for the duration of tRFC), and
//   - an array restore component proportional to the charge delivered back
//     into the cell capacitors.
//
// A partial refresh shortens the peripheral window but still delivers most
// of the charge a full refresh would (the last few percent of charge are
// slow but small), which is why the paper's refresh POWER saving (12%) is
// smaller than its refresh TIME saving (34%).
package power

import (
	"fmt"

	"vrldram/internal/device"
	"vrldram/internal/sim"
)

// Model holds the energy coefficients.
type Model struct {
	// ActivationEnergy is the per-operation energy of opening and precharging
	// the refreshed row - wordline drive and full bitline swing (J/op). It is
	// paid by full and partial refreshes alike, which is why the power saving
	// of VRL-DRAM is smaller than its time saving.
	ActivationEnergy float64
	// PeripheralPower is the extra power drawn while a refresh operation is
	// in flight (W).
	PeripheralPower float64
	// RestoreEnergyPerRow is the array energy to restore one row's worth of
	// cells from empty to full charge (J); actual operations scale it by the
	// normalized charge delivered.
	RestoreEnergyPerRow float64
}

// Default90nm returns coefficients consistent with the 90 nm device set:
// the peripheral component is sized from typical IDD5-minus-IDD3N refresh
// current at Vdd, and the restore component from the bank's cell charge
// (cols * Cs * Vdd^2 per row, doubled for bitline swing losses).
func Default90nm(p device.Params, geom device.BankGeometry) Model {
	// ~55 mA of refresh-active current at Vdd=1.2 V for the device
	// (single-bank share), on the order of DDR3 datasheet IDD5 deltas.
	periph := 0.055 * p.Vdd
	// Energy to recharge one row: cols cells, each Cs*Vdd^2, with a factor 2
	// for the bitline/SA swing burned per restored cell.
	restore := 2 * float64(geom.Cols) * p.Cs * p.Vdd * p.Vdd
	// Row open/precharge energy, sized so the duration-dependent component
	// is ~45% of a full refresh's energy, consistent with DRAMPower-style
	// IDD5 decompositions.
	act := 1.3e-9
	return Model{ActivationEnergy: act, PeripheralPower: periph, RestoreEnergyPerRow: restore}
}

// Validate reports the first unusable coefficient.
func (m Model) Validate() error {
	if m.ActivationEnergy <= 0 {
		return fmt.Errorf("power: ActivationEnergy must be positive, got %g", m.ActivationEnergy)
	}
	if m.PeripheralPower <= 0 {
		return fmt.Errorf("power: PeripheralPower must be positive, got %g", m.PeripheralPower)
	}
	if m.RestoreEnergyPerRow <= 0 {
		return fmt.Errorf("power: RestoreEnergyPerRow must be positive, got %g", m.RestoreEnergyPerRow)
	}
	return nil
}

// Breakdown is the refresh energy of one simulation run.
type Breakdown struct {
	Scheduler  string
	Activation float64 // J
	Peripheral float64 // J
	Restore    float64 // J
	Total      float64 // J
	AvgPower   float64 // W (refresh energy / simulated time)
}

// RefreshEnergy computes the refresh energy of a run from its statistics.
func (m Model) RefreshEnergy(st sim.Stats, tck float64) (Breakdown, error) {
	if err := m.Validate(); err != nil {
		return Breakdown{}, err
	}
	if tck <= 0 {
		return Breakdown{}, fmt.Errorf("power: tck must be positive, got %g", tck)
	}
	b := Breakdown{Scheduler: st.Scheduler}
	b.Activation = m.ActivationEnergy * float64(st.Refreshes())
	b.Peripheral = m.PeripheralPower * float64(st.BusyCycles) * tck
	b.Restore = m.RestoreEnergyPerRow * st.ChargeRestored
	b.Total = b.Activation + b.Peripheral + b.Restore
	if st.Duration > 0 {
		b.AvgPower = b.Total / st.Duration
	}
	return b, nil
}
