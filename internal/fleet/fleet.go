// Package fleet turns the single-bank simulator into a datacenter-scale
// campaign engine: a population of tens of thousands of simulated DRAM
// devices - each with its own deterministically derived retention-profile
// seed, operating temperature, and fault plan - partitioned into shards,
// dispatched across local and remote executors, and aggregated into
// mergeable fixed-bin sketches so fleet-level distributions (p99/p999
// refresh overhead, violation rates) come out byte-identical no matter how
// the shards were scheduled, retried, hedged, or resumed.
//
// The package hardens every failure path the ROADMAP's "simulate a
// datacenter, not a bank" item calls out:
//
//   - every shard attempt runs under a deadline with panic isolation;
//   - failures retry with jittered exponential backoff up to an attempt
//     budget;
//   - a shard that exhausts its budget (or fails permanently) is
//     quarantined, and the campaign still completes with an explicit
//     coverage report naming the quarantined shards;
//   - stragglers are hedged onto idle executors, with first-result-wins
//     recording so a duplicated shard cannot be counted twice;
//   - a CRC-checked manifest (the internal/checkpoint container) records
//     per-shard state durably, so a killed driver resumes only the
//     unfinished shards and reproduces the uninterrupted result bit for
//     bit.
//
// Determinism is the load-bearing property: a device's whole environment is
// a pure function of (Spec, device index), shard results are pure functions
// of their ShardSpec, and every aggregate is built from integer counters
// whose merge is associative and commutative. That is what lets the chaos
// tests demand exact equality between a fleet campaign that survived
// crashes, retries, and hedges and a plain sequential loop.
package fleet

import (
	"fmt"

	"vrldram/internal/core"
	"vrldram/internal/device"
	"vrldram/internal/scenario"
	"vrldram/internal/sim"
)

// Scheduler names accepted by Spec.Scheduler; they match the policies the
// service layer (internal/serve) exposes.
var schedulerNames = []string{"jedec", "raidr", "vrl", "vrl-access"}

// Spec describes a device population. Everything about device i - its
// retention-profile seed, operating temperature, and whether it carries a
// transient-weak-cell fault plan - derives deterministically from (Spec, i),
// so any two processes planning the same Spec agree about every device
// without exchanging anything but the Spec itself.
type Spec struct {
	Devices   int     // population size (required)
	Seed      int64   // campaign master seed (default 42)
	Scheduler string  // refresh policy per device (default "vrl")
	Duration  float64 // simulated seconds per device (required)
	Rows      int     // per-device bank rows (default 1024)
	Cols      int     // per-device bank columns (default 8)
	ShardSize int     // devices per shard (default 64)

	// TempMeanC / TempSwingC shape the per-device operating temperature:
	// each device draws a deterministic temperature in
	// [mean-swing, mean+swing]. The default mean is the profiling reference
	// (85 degC), so a zero swing reproduces the paper's nominal conditions;
	// a positive swing models a fleet whose hot devices run beyond their
	// profiled margin (fault.TemperatureExcursion).
	TempMeanC  float64
	TempSwingC float64

	// WeakFrac is the fraction of devices whose fault plan includes the
	// transient-weak-cell (VRT) injector, each with its own derived seed.
	WeakFrac float64

	// Scenarios is the workload catalog: a weighted mixture of named,
	// versioned composite-stress scenarios (internal/scenario). Each device
	// deterministically draws one scenario and a scenario seed from its own
	// streams, so populations mix diurnal thermal cycles, VRT storms, and
	// aging ramps instead of one temperature/weak-cell knob pair. Empty
	// means no scenario layer (the PR 7 behavior).
	Scenarios scenario.Mix

	// Guard wires the graceful-degradation guard (internal/guard) around
	// every device's scheduler; Scrub adds the online ECC patrol scrubber
	// and repair pipeline (internal/scrub). Spares is the per-device
	// spare-row budget when scrubbing (0 = scrub default, negative = none)
	// and ScrubSweep the patrol sweep period in seconds (0 = scrub
	// default).
	Guard      bool
	Scrub      bool
	Spares     int
	ScrubSweep float64

	// Backend selects the simulator runner for every device run. The zero
	// value (sim.BackendAuto) is the batched-exact path;
	// sim.BackendBatchLUT opts into the gated lookup-table decay curves.
	// The backend is part of the spec's canonical identity (a LUT campaign
	// must not resume onto an exact campaign's manifest), which is why the
	// container tags moved to version 3.
	Backend sim.Backend
}

// WithDefaults resolves zero fields to the fleet defaults.
func (s Spec) WithDefaults() Spec {
	if s.Seed == 0 {
		s.Seed = 42
	}
	if s.Scheduler == "" {
		s.Scheduler = "vrl"
	}
	if s.Rows == 0 {
		s.Rows = 1024
	}
	if s.Cols == 0 {
		s.Cols = 8
	}
	if s.ShardSize == 0 {
		s.ShardSize = 64
	}
	if s.TempMeanC == 0 {
		s.TempMeanC = 85
	}
	// Pin version-0 scenario refs to the current catalog versions, so the
	// canonical spec (and the manifest bound to it) names exactly the
	// semantics the campaign ran under.
	s.Scenarios = s.Scenarios.Normalized()
	return s
}

// Validate reports the first unusable field (after default resolution).
func (s Spec) Validate() error {
	s = s.WithDefaults()
	if s.Devices <= 0 {
		return fmt.Errorf("fleet: population must be positive, got %d devices", s.Devices)
	}
	ok := false
	for _, n := range schedulerNames {
		if s.Scheduler == n {
			ok = true
		}
	}
	if !ok {
		return fmt.Errorf("fleet: unknown scheduler %q", s.Scheduler)
	}
	if s.Duration <= 0 {
		return fmt.Errorf("fleet: duration must be positive, got %g", s.Duration)
	}
	if err := (device.BankGeometry{Rows: s.Rows, Cols: s.Cols}).Validate(); err != nil {
		return err
	}
	if s.ShardSize <= 0 {
		return fmt.Errorf("fleet: shard size must be positive, got %d", s.ShardSize)
	}
	if s.TempSwingC < 0 {
		return fmt.Errorf("fleet: temperature swing must be non-negative, got %g", s.TempSwingC)
	}
	if s.WeakFrac < 0 || s.WeakFrac > 1 {
		return fmt.Errorf("fleet: weak-device fraction %g outside [0,1]", s.WeakFrac)
	}
	if err := s.Scenarios.Validate(); err != nil {
		return err
	}
	if s.ScrubSweep < 0 {
		return fmt.Errorf("fleet: scrub sweep period must be non-negative, got %g", s.ScrubSweep)
	}
	return nil
}

// Canonical returns the spec's canonical binary form (after default
// resolution): the identity the manifest binds to, so a resumed campaign
// can only continue over the exact population it started with.
func (s Spec) Canonical() []byte {
	s = s.WithDefaults()
	var e core.StateEncoder
	e.Tag("fspec3")
	s.encodeTo(&e)
	return e.Data()
}

func (s Spec) encodeTo(e *core.StateEncoder) {
	e.Int(int64(s.Devices))
	e.Int(s.Seed)
	e.Bytes([]byte(s.Scheduler))
	e.Float(s.Duration)
	e.Int(int64(s.Rows))
	e.Int(int64(s.Cols))
	e.Int(int64(s.ShardSize))
	e.Float(s.TempMeanC)
	e.Float(s.TempSwingC)
	e.Float(s.WeakFrac)
	s.Scenarios.EncodeTo(e)
	e.Bool(s.Guard)
	e.Bool(s.Scrub)
	e.Int(int64(s.Spares))
	e.Float(s.ScrubSweep)
	e.Int(int64(s.Backend))
}

func decodeSpecFrom(d *core.StateDecoder) Spec {
	var s Spec
	s.Devices = int(d.Int())
	s.Seed = d.Int()
	s.Scheduler = string(d.Bytes())
	s.Duration = d.Float()
	s.Rows = int(d.Int())
	s.Cols = int(d.Int())
	s.ShardSize = int(d.Int())
	s.TempMeanC = d.Float()
	s.TempSwingC = d.Float()
	s.WeakFrac = d.Float()
	s.Scenarios = scenario.DecodeMixFrom(d)
	s.Guard = d.Bool()
	s.Scrub = d.Bool()
	s.Spares = int(d.Int())
	s.ScrubSweep = d.Float()
	s.Backend = sim.Backend(d.Int())
	return s
}

// --- per-device derivation ---------------------------------------------------

// Device is the fully resolved environment of one population member.
type Device struct {
	Index    int
	Seed     int64   // retention-profile Monte Carlo seed
	TempC    float64 // operating temperature over the whole window (degC)
	Weak     bool    // transient-weak-cell fault plan active
	WeakSeed int64   // VRT process seed when Weak

	// Scenario is the device's draw from the spec's workload catalog (the
	// zero Ref when the catalog is empty), and ScenSeed the scenario master
	// seed its stressor streams derive from.
	Scenario scenario.Ref
	ScenSeed int64
}

// splitmix64 is the standard 64-bit finalizing mixer; it drives every
// per-device draw so the population is reproducible from the Spec alone.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// unit maps a hash to [0, 1).
func unit(h uint64) float64 { return float64(h>>11) / (1 << 53) }

// posSeed folds a hash into a positive, non-zero int64 seed.
func posSeed(h uint64) int64 {
	s := int64(h &^ (1 << 63))
	if s == 0 {
		return 1
	}
	return s
}

// Device derives population member i. The derivation hashes (Seed, i) once
// and then splits independent streams for the profile seed, the temperature
// draw, and the fault plan, so changing one Spec knob (say, WeakFrac) never
// perturbs the others.
func (s Spec) Device(i int) Device {
	s = s.WithDefaults()
	h := splitmix64(uint64(s.Seed)) ^ splitmix64(uint64(i)+0x6a09e667f3bcc909)
	d := Device{
		Index: i,
		Seed:  posSeed(splitmix64(h)),
		TempC: s.TempMeanC + s.TempSwingC*(2*unit(splitmix64(h^0x517cc1b727220a95))-1),
	}
	if s.WeakFrac > 0 && unit(splitmix64(h^0x2545f4914f6cdd1d)) < s.WeakFrac {
		d.Weak = true
		d.WeakSeed = posSeed(splitmix64(h ^ 0x9e3779b97f4a7c15))
	}
	// The scenario pick and seed ride their own salted streams, so adding a
	// catalog to a Spec (or reweighting it) never perturbs the profile
	// seed, temperature, or fault-plan draws of any device.
	if !s.Scenarios.Empty() {
		d.Scenario = s.Scenarios.Pick(splitmix64(h ^ 0xd6e8feb86659fd93))
		d.ScenSeed = posSeed(splitmix64(h ^ 0xc2b2ae3d27d4eb4f))
	}
	return d
}

// --- shard planning ----------------------------------------------------------

// NumShards returns how many shards the population partitions into.
func (s Spec) NumShards() int {
	s = s.WithDefaults()
	if s.Devices <= 0 {
		return 0
	}
	return (s.Devices + s.ShardSize - 1) / s.ShardSize
}

// Shards deterministically partitions the population into contiguous
// device-index ranges. Every process planning the same Spec produces the
// same shard list, which is what makes shard indices meaningful across the
// wire and across driver restarts.
func (s Spec) Shards() []ShardSpec {
	s = s.WithDefaults()
	n := s.NumShards()
	out := make([]ShardSpec, 0, n)
	for i := 0; i < n; i++ {
		start := i * s.ShardSize
		count := s.ShardSize
		if start+count > s.Devices {
			count = s.Devices - start
		}
		out = append(out, ShardSpec{Spec: s, Index: i, Start: start, Count: count})
	}
	return out
}
