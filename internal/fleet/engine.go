package fleet

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"
)

// Executor runs shards on some substrate - in-process workers, a remote
// vrlserved instance, anything. Implementations must honor the context and
// must be safe for Slots() concurrent RunShard calls. A correct executor is
// a pure function of the ShardSpec: the engine freely retries, hedges, and
// switches executors mid-campaign precisely because every one of them must
// produce the same bytes for the same shard.
type Executor interface {
	Name() string
	Slots() int
	RunShard(ctx context.Context, ss ShardSpec) (ShardResult, error)
}

// PermanentError wraps a failure that no retry can fix (a rejected spec, a
// fatal server verdict). The engine quarantines the shard immediately
// instead of burning the rest of its attempt budget.
type PermanentError struct{ Err error }

func (e *PermanentError) Error() string { return e.Err.Error() }
func (e *PermanentError) Unwrap() error { return e.Err }

// MarkPermanent wraps err as permanent; nil stays nil.
func MarkPermanent(err error) error {
	if err == nil {
		return nil
	}
	return &PermanentError{Err: err}
}

// IsPermanent reports whether err carries a PermanentError anywhere in its
// chain.
func IsPermanent(err error) bool {
	var p *PermanentError
	return errors.As(err, &p)
}

// Options tunes the campaign engine.
type Options struct {
	// ManifestPath persists per-shard state for resume; empty keeps the
	// manifest in memory only.
	ManifestPath string

	// MaxAttempts is the per-shard attempt budget (default 3). A shard
	// whose budget runs out is quarantined, not fatal.
	MaxAttempts int

	// BaseBackoff/MaxBackoff bound the jittered exponential delay between a
	// shard's attempts (defaults 50ms and 2s).
	BaseBackoff time.Duration
	MaxBackoff  time.Duration

	// ShardTimeout deadlines each attempt (default 10m); 0 keeps the
	// default, negative disables.
	ShardTimeout time.Duration

	// HedgeAfter launches a duplicate attempt against a shard that has been
	// running this long while other slots sit idle; 0 disables hedging.
	// Hedges do not charge the shard's attempt budget, and the first result
	// to land wins (the loser is discarded unobserved - results are
	// byte-identical by construction, so the race is invisible).
	HedgeAfter time.Duration

	// Seed drives the backoff jitter (default 1); determinism of the
	// RESULT never depends on it.
	Seed int64

	// Logf receives progress lines; nil silences them.
	Logf func(format string, args ...interface{})

	// PreShard, when set, runs before each attempt of each shard with its
	// 1-based attempt number; an error fails the attempt before it reaches
	// an executor. It exists for chaos drills: forcing a shard through the
	// retry/quarantine path without faking an executor.
	PreShard func(shard, attempt int) error
}

func (o Options) withDefaults() Options {
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 3
	}
	if o.BaseBackoff <= 0 {
		o.BaseBackoff = 50 * time.Millisecond
	}
	if o.MaxBackoff <= 0 {
		o.MaxBackoff = 2 * time.Second
	}
	if o.ShardTimeout == 0 {
		o.ShardTimeout = 10 * time.Minute
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

func (o Options) logf(format string, args ...interface{}) {
	if o.Logf != nil {
		o.Logf(format, args...)
	}
}

// backoff returns the delay before attempt n+1 of shard idx: exponential in
// the attempts already charged, capped, with a deterministic jitter factor
// in [0.5, 1.5) so a burst of same-shaped failures does not resynchronize.
func (o Options) backoff(idx, n int) time.Duration {
	d := o.BaseBackoff
	for i := 1; i < n && d < o.MaxBackoff; i++ {
		d *= 2
	}
	if d > o.MaxBackoff {
		d = o.MaxBackoff
	}
	h := splitmix64(uint64(o.Seed) ^ splitmix64(uint64(idx)<<20|uint64(n)))
	return time.Duration(float64(d) * (0.5 + unit(h)))
}

// engine is the dispatcher state shared by every worker goroutine. The
// manifest stays the durable source of truth; these mirrors exist so claim
// decisions never wait on a disk write.
type engine struct {
	ctx  context.Context
	opts Options
	man  *Manifest

	mu       sync.Mutex
	shards   []ShardSpec
	state    []ShardState
	attempts []int       // budget charged per shard
	inflight []int       // running attempts per shard (hedges included)
	started  []time.Time // oldest inflight attempt's start
	hedged   []bool      // a hedge was launched for the current run
	readyAt  []time.Time // backoff gate
	open     int         // shards not yet terminal

	launched int64 // attempts handed to executors, hedges included
	retried  int64 // non-hedge launches beyond a shard's first
	hedges   int64
	fail     error // first manifest-persistence failure
}

// Run executes the campaign: every shard of spec dispatched across the
// executors until each is done or quarantined. A context cancellation parks
// the in-flight shards (without charging their budgets) and returns the
// context error; rerunning with the same ManifestPath resumes. Quarantined
// shards do NOT fail the run - the Report says exactly what was covered.
func Run(ctx context.Context, spec Spec, execs []Executor, opts Options) (*Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	opts = opts.withDefaults()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	spec = spec.WithDefaults()
	if len(execs) == 0 {
		return nil, fmt.Errorf("fleet: no executors")
	}
	man, err := NewManifest(spec, opts.ManifestPath)
	if err != nil {
		return nil, err
	}
	return runWithManifest(ctx, man, execs, opts)
}

func runWithManifest(ctx context.Context, man *Manifest, execs []Executor, opts Options) (*Report, error) {
	spec := man.Spec()
	e := &engine{ctx: ctx, opts: opts, man: man, shards: spec.Shards()}
	n := len(e.shards)
	e.state = make([]ShardState, n)
	e.attempts = make([]int, n)
	e.inflight = make([]int, n)
	e.started = make([]time.Time, n)
	e.hedged = make([]bool, n)
	e.readyAt = make([]time.Time, n)
	for i, s := range man.Snapshot() {
		e.state[i] = s.State
		e.attempts[i] = s.Attempts
		if s.State != ShardDone && s.State != ShardQuarantined {
			e.open++
		}
	}
	if man.ResumedDone() > 0 {
		opts.logf("fleet: resuming: %d/%d shard(s) already done", man.ResumedDone(), n)
	}

	var wg sync.WaitGroup
	for _, ex := range execs {
		slots := ex.Slots()
		if slots < 1 {
			slots = 1
		}
		for s := 0; s < slots; s++ {
			wg.Add(1)
			go func(ex Executor) {
				defer wg.Done()
				e.worker(ex)
			}(ex)
		}
	}
	wg.Wait()

	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("fleet: campaign interrupted: %w", err)
	}
	e.mu.Lock()
	fail := e.fail
	e.mu.Unlock()
	if fail != nil {
		return nil, fail
	}
	return e.report()
}

// worker claims and runs shard attempts until the campaign is finished or
// cancelled.
func (e *engine) worker(ex Executor) {
	for {
		idx, attempt, hedge, ok := e.claim()
		if !ok {
			return
		}
		e.runAttempt(ex, idx, attempt, hedge)
	}
}

// claim picks the next attempt for this worker: the lowest-index shard past
// its backoff gate, or - with every real attempt either running or gated - a
// hedge against the longest-running straggler. It blocks (polling) until
// work exists, the campaign finishes, or the context dies.
func (e *engine) claim() (idx, attempt int, hedge, ok bool) {
	for {
		e.mu.Lock()
		if e.ctx.Err() != nil || e.open == 0 {
			e.mu.Unlock()
			return 0, 0, false, false
		}
		now := time.Now()
		wait := 25 * time.Millisecond
		for i := range e.shards {
			if e.state[i] != ShardPlanned && e.state[i] != ShardRetrying {
				continue
			}
			if now.Before(e.readyAt[i]) {
				if d := e.readyAt[i].Sub(now); d < wait {
					wait = d
				}
				continue
			}
			e.state[i] = ShardRunning
			e.attempts[i]++
			e.inflight[i] = 1
			e.started[i] = now
			e.hedged[i] = false
			e.launched++
			if e.attempts[i] > 1 {
				e.retried++
			}
			a := e.attempts[i]
			e.mu.Unlock()
			if err := e.man.MarkRunning(i); err != nil {
				e.noteFailure(err)
			}
			return i, a, false, true
		}
		if e.opts.HedgeAfter > 0 {
			best, bestAge := -1, e.opts.HedgeAfter
			for i := range e.shards {
				if e.state[i] != ShardRunning || e.inflight[i] != 1 || e.hedged[i] {
					continue
				}
				if age := now.Sub(e.started[i]); age >= bestAge {
					best, bestAge = i, age
				}
			}
			if best >= 0 {
				e.hedged[best] = true
				e.inflight[best]++
				e.launched++
				e.hedges++
				a := e.attempts[best]
				e.mu.Unlock()
				e.opts.logf("fleet: hedging shard %d (running %s)", best, bestAge.Round(time.Millisecond))
				return best, a, true, true
			}
		}
		e.mu.Unlock()
		t := time.NewTimer(wait)
		select {
		case <-e.ctx.Done():
			t.Stop()
		case <-t.C:
		}
	}
}

// runAttempt executes one attempt with deadline and panic isolation, then
// settles the outcome.
func (e *engine) runAttempt(ex Executor, idx, attempt int, hedge bool) {
	ss := e.shards[idx]
	actx := e.ctx
	if e.opts.ShardTimeout > 0 {
		var cancel context.CancelFunc
		actx, cancel = context.WithTimeout(e.ctx, e.opts.ShardTimeout)
		defer cancel()
	}
	var res ShardResult
	err := func() (err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("fleet: executor %s panicked on shard %d: %v", ex.Name(), idx, r)
			}
		}()
		if e.opts.PreShard != nil {
			if err := e.opts.PreShard(idx, attempt); err != nil {
				return err
			}
		}
		res, err = ex.RunShard(actx, ss)
		return err
	}()
	e.settle(ex, idx, res, err)
}

// settle folds an attempt's outcome back into the dispatcher state and the
// manifest. First result wins; a loser of a hedge race - success or failure -
// changes nothing.
func (e *engine) settle(ex Executor, idx int, res ShardResult, err error) {
	e.mu.Lock()
	e.inflight[idx]--
	if err == nil {
		if e.state[idx] == ShardDone || e.state[idx] == ShardQuarantined {
			e.mu.Unlock()
			return // hedge twin settled first
		}
		e.state[idx] = ShardDone
		e.open--
		e.mu.Unlock()
		if merr := e.man.MarkDone(idx, res); merr != nil {
			e.noteFailure(merr)
		}
		e.opts.logf("fleet: shard %d done on %s (%d/%d open)", idx, ex.Name(), e.openCount(), len(e.shards))
		return
	}
	if e.state[idx] != ShardRunning {
		e.mu.Unlock()
		return // already settled by the twin
	}
	if e.inflight[idx] > 0 {
		// The twin is still running and now owns the shard's fate; this
		// failure is only worth a log line.
		e.mu.Unlock()
		e.opts.logf("fleet: shard %d attempt lost its hedge race with a failure: %v", idx, err)
		return
	}
	if e.ctx.Err() != nil {
		// The campaign is being torn down: park the shard without charging
		// the budget; the resumed driver re-runs it from scratch.
		if e.attempts[idx] > 0 {
			e.attempts[idx]--
		}
		if e.attempts[idx] > 0 {
			e.state[idx] = ShardRetrying
		} else {
			e.state[idx] = ShardPlanned
		}
		e.mu.Unlock()
		if merr := e.man.Uncharge(idx); merr != nil {
			e.noteFailure(merr)
		}
		return
	}
	charged := e.attempts[idx]
	if IsPermanent(err) || charged >= e.opts.MaxAttempts {
		e.state[idx] = ShardQuarantined
		e.open--
		e.mu.Unlock()
		why := "budget exhausted"
		if IsPermanent(err) {
			why = "permanent failure"
		}
		e.opts.logf("fleet: quarantining shard %d after %d attempt(s) (%s): %v", idx, charged, why, err)
		if merr := e.man.MarkQuarantined(idx, err.Error()); merr != nil {
			e.noteFailure(merr)
		}
		return
	}
	delay := e.opts.backoff(idx, charged)
	e.state[idx] = ShardRetrying
	e.readyAt[idx] = time.Now().Add(delay)
	e.mu.Unlock()
	e.opts.logf("fleet: shard %d attempt %d/%d failed on %s, retrying in %s: %v",
		idx, charged, e.opts.MaxAttempts, ex.Name(), delay.Round(time.Millisecond), err)
	if merr := e.man.MarkFailed(idx, err.Error()); merr != nil {
		e.noteFailure(merr)
	}
}

func (e *engine) openCount() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.open
}

func (e *engine) noteFailure(err error) {
	e.mu.Lock()
	if e.fail == nil {
		e.fail = err
	}
	e.mu.Unlock()
}

// report assembles the final Report from the manifest (the durable truth)
// plus the engine's dispatch counters. Results merge in shard-index order;
// the merge is order-independent anyway, but a fixed order keeps the code
// honest about not needing completion order.
func (e *engine) report() (*Report, error) {
	spec := e.man.Spec()
	r := &Report{
		Spec:        spec,
		Sum:         NewSummary(),
		ShardsTotal: len(e.shards),
		Quarantined: e.man.Quarantines(),
		Attempts:    e.launched,
		Retries:     e.retried,
		Hedges:      e.hedges,
		Resumed:     e.man.ResumedDone(),
	}
	for i := range e.shards {
		res, ok, err := e.man.Result(i)
		if err != nil {
			return nil, err
		}
		if !ok {
			continue
		}
		r.ShardsDone++
		if err := r.Sum.Merge(res.Sum); err != nil {
			return nil, err
		}
	}
	if r.ShardsDone+len(r.Quarantined) != r.ShardsTotal {
		return nil, fmt.Errorf("fleet: campaign ended with %d done + %d quarantined of %d shards",
			r.ShardsDone, len(r.Quarantined), r.ShardsTotal)
	}
	return r, nil
}
