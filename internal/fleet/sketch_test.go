package fleet

import (
	"math"
	"math/rand"
	"testing"

	"vrldram/internal/core"
	"vrldram/internal/sim"
)

// fakeStats synthesizes deterministic per-device statistics without running
// a simulator; index-dependent so distinct devices are distinguishable.
func fakeStats(i int) sim.Stats {
	return sim.Stats{
		Duration:         0.05,
		FullRefreshes:    int64(10 + i),
		PartialRefreshes: int64(i % 4),
		BusyCycles:       int64(1000 * (i + 1)),
		ChargeRestored:   0.125 * float64(i),
		Violations:       i % 3,
		FaultsInjected:   int64(i % 2),
		Guard: core.GuardStats{
			Alarms:       int64(i % 5),
			Demotions:    int64(i % 3),
			Promotions:   int64(i % 2),
			Escalations:  int64(i % 7),
			BreakerTrips: int64(i % 2),
		},
		Scrub: core.ScrubStats{
			Corrected:     int64(i % 6),
			Uncorrectable: int64(i % 2),
			Reprofiles:    int64(i % 4),
			RowsRemapped:  int64(i % 3),
			HardFails:     int64(i % 2),
			SLOMisses:     int64(i % 9),
			SparesLeft:    16 - i%3,
		},
	}
}

// fakeResult builds a valid ShardResult from fakeStats - the engine tests'
// stand-in for a real simulation, cheap enough to run thousands of times.
func fakeResult(ss ShardSpec) ShardResult {
	spec := ss.Spec.WithDefaults()
	sum := NewSummary()
	for i := ss.Start; i < ss.Start+ss.Count; i++ {
		sum.AddDevice(spec.Device(i), fakeStats(i), spec.TCK())
	}
	return ShardResult{Shard: ss.Index, Start: ss.Start, Count: ss.Count, Sum: sum}
}

func TestHistAddAndQuantile(t *testing.T) {
	h := NewHist(0, 10, 10)
	for _, v := range []float64{-1, 0, 0.5, 5, 9.999, 10, 42, math.NaN()} {
		h.Add(v)
	}
	if h.Under != 1 {
		t.Fatalf("Under = %d, want 1", h.Under)
	}
	if h.Over != 3 { // 10, 42, NaN
		t.Fatalf("Over = %d, want 3", h.Over)
	}
	if h.Total() != 8 {
		t.Fatalf("Total = %d, want 8", h.Total())
	}
	if q := h.Quantile(1); q != 10 {
		t.Fatalf("Quantile(1) = %g, want Hi", q)
	}
	// Rank 4 of 8: under(-1), then 0 and 0.5 fill ranks 2-3, so rank 4 is
	// the sample 5 - bin [5,6), upper edge 6.
	if q := h.Quantile(0.5); q != 6 {
		t.Fatalf("Quantile(0.5) = %g, want 6", q)
	}
	if !math.IsNaN(NewHist(0, 1, 4).Quantile(0.5)) {
		t.Fatal("empty histogram quantile must be NaN")
	}
}

func TestHistMergeShapeMismatch(t *testing.T) {
	if err := NewHist(0, 10, 10).Merge(NewHist(0, 10, 20)); err == nil {
		t.Fatal("merging mismatched binnings must fail")
	}
	if err := NewHist(0, 10, 10).Merge(nil); err != nil {
		t.Fatalf("nil merge must be a no-op, got %v", err)
	}
}

// TestSummaryMergeOrderIndependence is the property the whole aggregation
// design exists for: merging per-shard summaries in any order - and any
// grouping - produces byte-identical encodings.
func TestSummaryMergeOrderIndependence(t *testing.T) {
	spec := Spec{Devices: 100, Seed: 3, Scheduler: "vrl", Duration: 0.05, Rows: 128, Cols: 4, ShardSize: 7, TempSwingC: 15, WeakFrac: 0.3}
	shards := spec.Shards()
	results := make([]*Summary, len(shards))
	for i, ss := range shards {
		results[i] = fakeResult(ss).Sum
	}

	merge := func(order []int) []byte {
		total := NewSummary()
		for _, i := range order {
			if err := total.Merge(results[i]); err != nil {
				t.Fatal(err)
			}
		}
		return total.Encode()
	}

	order := make([]int, len(shards))
	for i := range order {
		order[i] = i
	}
	want := merge(order)

	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 20; trial++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		if got := merge(order); string(got) != string(want) {
			t.Fatalf("trial %d: shuffled merge order changed the encoded summary", trial)
		}
	}

	// Grouped merge (merge halves, then merge the halves) must also agree.
	left, right := NewSummary(), NewSummary()
	for i, r := range results {
		side := left
		if i%2 == 1 {
			side = right
		}
		if err := side.Merge(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := left.Merge(right); err != nil {
		t.Fatal(err)
	}
	if string(left.Encode()) != string(want) {
		t.Fatal("grouped merge changed the encoded summary")
	}
}

func TestSummaryCodecRoundTrip(t *testing.T) {
	spec := testFleetSpec()
	sum := fakeResult(spec.Shards()[0]).Sum
	blob := sum.Encode()
	got, err := DecodeSummary(blob)
	if err != nil {
		t.Fatal(err)
	}
	if string(got.Encode()) != string(blob) {
		t.Fatal("summary round trip not byte-identical")
	}
	if _, err := DecodeSummary(blob[:len(blob)-3]); err == nil {
		t.Fatal("truncated summary must not decode")
	}
	flip := append([]byte(nil), blob...)
	flip[1] ^= 0xff // corrupt the tag
	if _, err := DecodeSummary(flip); err == nil {
		t.Fatal("summary with wrong tag must not decode")
	}
}
