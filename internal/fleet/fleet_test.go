package fleet

import (
	"reflect"
	"strings"
	"testing"

	"vrldram/internal/scenario"
)

func testFleetSpec() Spec {
	return Spec{
		Devices:    10,
		Seed:       7,
		Scheduler:  "vrl",
		Duration:   0.05,
		Rows:       256,
		Cols:       4,
		ShardSize:  3,
		TempMeanC:  85,
		TempSwingC: 10,
		WeakFrac:   0.4,
		Scenarios: scenario.Mix{Items: []scenario.Weighted{
			{Ref: scenario.Ref{Name: "nominal"}, Weight: 2},
			{Ref: scenario.Ref{Name: "aging"}, Weight: 1},
		}},
		Guard: true,
		Scrub: true,
	}
}

func TestSpecValidateCatchesEachField(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Spec)
		want string
	}{
		{"devices", func(s *Spec) { s.Devices = 0 }, "population"},
		{"scheduler", func(s *Spec) { s.Scheduler = "fifo" }, "scheduler"},
		{"duration", func(s *Spec) { s.Duration = -1 }, "duration"},
		{"rows", func(s *Spec) { s.Rows = -4 }, "rows"},
		{"shardsize", func(s *Spec) { s.ShardSize = -1 }, "shard size"},
		{"tempswing", func(s *Spec) { s.TempSwingC = -2 }, "swing"},
		{"weakfrac", func(s *Spec) { s.WeakFrac = 1.5 }, "weak"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			s := testFleetSpec()
			c.mut(&s)
			err := s.Validate()
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("Validate = %v, want mention of %q", err, c.want)
			}
		})
	}
	if err := testFleetSpec().Validate(); err != nil {
		t.Fatalf("base spec must validate: %v", err)
	}
}

// TestDeviceDerivationIsolatedStreams pins the load-bearing property of the
// population derivation: device environments are pure functions of
// (Spec, index), and changing one knob (the weak-device fraction) must not
// perturb the independent draws (profile seed, temperature).
func TestDeviceDerivationIsolatedStreams(t *testing.T) {
	spec := testFleetSpec()
	for i := 0; i < spec.Devices; i++ {
		a, b := spec.Device(i), spec.Device(i)
		if a != b {
			t.Fatalf("device %d not deterministic: %+v vs %+v", i, a, b)
		}
		if a.Seed <= 0 {
			t.Fatalf("device %d has non-positive profile seed %d", i, a.Seed)
		}
		lo, hi := spec.TempMeanC-spec.TempSwingC, spec.TempMeanC+spec.TempSwingC
		if a.TempC < lo || a.TempC > hi {
			t.Fatalf("device %d temperature %g outside [%g,%g]", i, a.TempC, lo, hi)
		}
		if a.Weak && a.WeakSeed <= 0 {
			t.Fatalf("weak device %d has non-positive fault seed", i)
		}
	}

	noWeak := spec
	noWeak.WeakFrac = 0
	for i := 0; i < spec.Devices; i++ {
		a, b := spec.Device(i), noWeak.Device(i)
		if a.Seed != b.Seed || a.TempC != b.TempC {
			t.Fatalf("device %d: WeakFrac change perturbed seed/temperature (%+v vs %+v)", i, a, b)
		}
		if b.Weak {
			t.Fatalf("device %d weak despite WeakFrac=0", i)
		}
	}

	// Distinct devices must not collapse onto one environment.
	seeds := map[int64]bool{}
	for i := 0; i < spec.Devices; i++ {
		seeds[spec.Device(i).Seed] = true
	}
	if len(seeds) != spec.Devices {
		t.Fatalf("only %d distinct profile seeds across %d devices", len(seeds), spec.Devices)
	}
}

// TestDeviceScenarioDrawIsolatedStream extends the stream-isolation property
// to the workload catalog: adding (or reweighting) a scenario mixture must
// not perturb any device's profile seed, temperature, or fault plan, and the
// draws themselves must be valid catalog refs with positive scenario seeds.
func TestDeviceScenarioDrawIsolatedStream(t *testing.T) {
	base := testFleetSpec()
	base.Devices = 200
	base.Scenarios = scenario.Mix{}
	mixed := base
	mixed.Scenarios = scenario.Mix{Items: []scenario.Weighted{
		{Ref: scenario.Ref{Name: "diurnal"}, Weight: 3},
		{Ref: scenario.Ref{Name: "kitchen-sink"}, Weight: 1},
	}}
	if err := mixed.Validate(); err != nil {
		t.Fatal(err)
	}

	picked := map[string]int{}
	for i := 0; i < base.Devices; i++ {
		a, b := base.Device(i), mixed.Device(i)
		if a.Seed != b.Seed || a.TempC != b.TempC || a.Weak != b.Weak || a.WeakSeed != b.WeakSeed {
			t.Fatalf("device %d: adding a scenario catalog perturbed the other draws (%+v vs %+v)", i, a, b)
		}
		if a.Scenario != (scenario.Ref{}) || a.ScenSeed != 0 {
			t.Fatalf("device %d drew a scenario from an empty catalog: %+v", i, a)
		}
		if b.Scenario.Name == "" || b.Scenario.Version == 0 {
			t.Fatalf("device %d drew no versioned scenario from the mixture: %+v", i, b)
		}
		if b.ScenSeed <= 0 {
			t.Fatalf("device %d has non-positive scenario seed %d", i, b.ScenSeed)
		}
		picked[b.Scenario.Name]++
	}
	if picked["diurnal"] == 0 || picked["kitchen-sink"] == 0 {
		t.Fatalf("mixture entries unused across %d devices: %v", base.Devices, picked)
	}
	if picked["diurnal"] <= picked["kitchen-sink"] {
		t.Fatalf("weight 3:1 not visible in the draws: %v", picked)
	}

	// Reweighting changes only the scenario stream.
	reweighted := mixed
	reweighted.Scenarios = scenario.Mix{Items: []scenario.Weighted{
		{Ref: scenario.Ref{Name: "diurnal"}, Weight: 1},
		{Ref: scenario.Ref{Name: "kitchen-sink"}, Weight: 3},
	}}
	for i := 0; i < base.Devices; i++ {
		a, b := mixed.Device(i), reweighted.Device(i)
		if a.Seed != b.Seed || a.TempC != b.TempC || a.Weak != b.Weak || a.ScenSeed != b.ScenSeed {
			t.Fatalf("device %d: reweighting perturbed non-pick draws", i)
		}
	}
}

// TestShardsPartitionExactly checks the shard plan covers every device index
// exactly once, in order, with a short tail shard.
func TestShardsPartitionExactly(t *testing.T) {
	spec := testFleetSpec() // 10 devices / shard size 3 -> 3+3+3+1
	shards := spec.Shards()
	if len(shards) != spec.NumShards() || len(shards) != 4 {
		t.Fatalf("got %d shards, NumShards=%d, want 4", len(shards), spec.NumShards())
	}
	next := 0
	for i, ss := range shards {
		if ss.Index != i {
			t.Fatalf("shard %d carries index %d", i, ss.Index)
		}
		if ss.Start != next {
			t.Fatalf("shard %d starts at %d, want %d", i, ss.Start, next)
		}
		if err := ss.Validate(); err != nil {
			t.Fatalf("shard %d invalid: %v", i, err)
		}
		next += ss.Count
	}
	if next != spec.Devices {
		t.Fatalf("shards cover %d devices, population has %d", next, spec.Devices)
	}
	if last := shards[len(shards)-1]; last.Count != 1 {
		t.Fatalf("tail shard holds %d devices, want 1", last.Count)
	}
}

func TestShardSpecCodecRoundTrip(t *testing.T) {
	for _, ss := range testFleetSpec().Shards() {
		blob := ss.Encode()
		got, err := DecodeShardSpec(blob)
		if err != nil {
			t.Fatalf("decode shard %d: %v", ss.Index, err)
		}
		want := ShardSpec{Spec: ss.Spec.WithDefaults(), Index: ss.Index, Start: ss.Start, Count: ss.Count}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("shard %d round trip:\n got %+v\nwant %+v", ss.Index, got, want)
		}
	}
	// A shard that lies about its device range must be refused.
	ss := testFleetSpec().Shards()[1]
	ss.Start++
	if _, err := DecodeShardSpec(ss.Encode()); err == nil {
		t.Fatal("shard with off-plan start must not decode")
	}
	if _, err := DecodeShardSpec(nil); err == nil {
		t.Fatal("empty blob must not decode")
	}
}

func TestShardResultCodecRoundTrip(t *testing.T) {
	ss := testFleetSpec().Shards()[0]
	r := fakeResult(ss)
	got, err := DecodeShardResult(r.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if string(got.Encode()) != string(r.Encode()) {
		t.Fatal("shard result round trip not byte-identical")
	}
	// A result whose summary covers the wrong number of devices is refused.
	bad := fakeResult(ss)
	bad.Count++
	if _, err := DecodeShardResult(bad.Encode()); err == nil {
		t.Fatal("result with device-count mismatch must not decode")
	}
}
