package fleet

import (
	"context"
	"runtime"

	"vrldram/internal/profcache"
)

// LocalExecutor runs shards in-process across a bounded number of slots,
// sharing one profile cache so retried and hedged shards reuse the Monte
// Carlo constructions instead of resampling them. The zero value is not
// usable; call NewLocalExecutor.
type LocalExecutor struct {
	slots int
	cache *profcache.Cache
}

// NewLocalExecutor returns a local executor with the given concurrency
// (GOMAXPROCS when slots < 1).
func NewLocalExecutor(slots int) *LocalExecutor {
	if slots < 1 {
		slots = runtime.GOMAXPROCS(0)
	}
	return &LocalExecutor{slots: slots, cache: &profcache.Cache{}}
}

// Name identifies the executor in logs and reports.
func (l *LocalExecutor) Name() string { return "local" }

// Slots reports how many shards may run concurrently.
func (l *LocalExecutor) Slots() int { return l.slots }

// RunShard computes the shard in this process.
func (l *LocalExecutor) RunShard(ctx context.Context, ss ShardSpec) (ShardResult, error) {
	return RunShard(ctx, ss, l.cache)
}
