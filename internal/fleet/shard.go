package fleet

import (
	"context"
	"fmt"

	"vrldram/internal/core"
	"vrldram/internal/profcache"
)

// ShardSpec identifies one contiguous slice of the population, carrying the
// full campaign Spec so a shard is self-describing on the wire: a remote
// executor needs nothing but the blob to recompute the exact same result.
type ShardSpec struct {
	Spec  Spec
	Index int // shard index within Spec.Shards()
	Start int // first device index
	Count int // number of devices
}

// Validate checks the shard against its own spec's partition plan.
func (ss ShardSpec) Validate() error {
	if err := ss.Spec.Validate(); err != nil {
		return err
	}
	s := ss.Spec.WithDefaults()
	if ss.Index < 0 || ss.Index >= s.NumShards() {
		return fmt.Errorf("fleet: shard index %d outside plan of %d shards", ss.Index, s.NumShards())
	}
	start := ss.Index * s.ShardSize
	count := s.ShardSize
	if start+count > s.Devices {
		count = s.Devices - start
	}
	if ss.Start != start || ss.Count != count {
		return fmt.Errorf("fleet: shard %d claims devices [%d,%d), plan says [%d,%d)",
			ss.Index, ss.Start, ss.Start+ss.Count, start, start+count)
	}
	return nil
}

// Encode renders the shard spec canonically (tag "fsh3").
func (ss ShardSpec) Encode() []byte {
	var e core.StateEncoder
	e.Tag("fsh3")
	ss.Spec.WithDefaults().encodeTo(&e)
	e.Int(int64(ss.Index))
	e.Int(int64(ss.Start))
	e.Int(int64(ss.Count))
	return e.Data()
}

// DecodeShardSpec parses and validates a canonical shard spec blob.
func DecodeShardSpec(blob []byte) (ShardSpec, error) {
	d := core.NewStateDecoder(blob)
	d.ExpectTag("fsh3")
	var ss ShardSpec
	ss.Spec = decodeSpecFrom(d)
	ss.Index = int(d.Int())
	ss.Start = int(d.Int())
	ss.Count = int(d.Int())
	if err := d.Finish(); err != nil {
		return ShardSpec{}, err
	}
	if err := ss.Validate(); err != nil {
		return ShardSpec{}, err
	}
	return ss, nil
}

// ShardResult is the outcome of one shard: its identity plus the mergeable
// summary over exactly its devices.
type ShardResult struct {
	Shard int // shard index
	Start int
	Count int
	Sum   *Summary
}

// Encode renders the result canonically (tag "fsr2").
func (r ShardResult) Encode() []byte {
	var e core.StateEncoder
	e.Tag("fsr2")
	e.Int(int64(r.Shard))
	e.Int(int64(r.Start))
	e.Int(int64(r.Count))
	r.Sum.encodeTo(&e)
	return e.Data()
}

// DecodeShardResult parses a canonical shard result blob.
func DecodeShardResult(blob []byte) (ShardResult, error) {
	d := core.NewStateDecoder(blob)
	d.ExpectTag("fsr2")
	var r ShardResult
	r.Shard = int(d.Int())
	r.Start = int(d.Int())
	r.Count = int(d.Int())
	r.Sum = decodeSummaryFrom(d)
	if err := d.Finish(); err != nil {
		return ShardResult{}, err
	}
	if r.Sum.Devices != int64(r.Count) {
		return ShardResult{}, fmt.Errorf("fleet: shard %d result aggregates %d devices, shard holds %d",
			r.Shard, r.Sum.Devices, r.Count)
	}
	return r, nil
}

// RunShard simulates every device of the shard in index order and folds the
// outcomes into one summary. The result is a pure function of the ShardSpec
// (the context only decides WHETHER it completes, never what it computes),
// so any executor - local worker, remote service, hedged duplicate, or a
// post-crash recomputation - produces identical bytes. cache may be nil for
// a private one-shot cache.
func RunShard(ctx context.Context, ss ShardSpec, cache *profcache.Cache) (ShardResult, error) {
	if err := ss.Validate(); err != nil {
		return ShardResult{}, err
	}
	if cache == nil {
		cache = &profcache.Cache{}
	}
	spec := ss.Spec.WithDefaults()
	sum := NewSummary()
	for i := ss.Start; i < ss.Start+ss.Count; i++ {
		dev := spec.Device(i)
		st, err := RunDevice(ctx, spec, dev, cache)
		if err != nil {
			return ShardResult{}, fmt.Errorf("fleet: shard %d device %d: %w", ss.Index, i, err)
		}
		sum.AddDevice(dev, st, spec.TCK())
	}
	return ShardResult{Shard: ss.Index, Start: ss.Start, Count: ss.Count, Sum: sum}, nil
}

// RunSequential is the oracle the chaos tests compare against: one process,
// one goroutine, shards in index order, no retries, no manifest. skip names
// shard indices to leave out (the quarantined set), so the baseline covers
// exactly the population an interrupted campaign managed to cover.
func RunSequential(ctx context.Context, spec Spec, skip map[int]bool) (*Summary, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	cache := &profcache.Cache{}
	sum := NewSummary()
	for _, ss := range spec.Shards() {
		if skip[ss.Index] {
			continue
		}
		r, err := RunShard(ctx, ss, cache)
		if err != nil {
			return nil, err
		}
		if err := sum.Merge(r.Sum); err != nil {
			return nil, err
		}
	}
	return sum, nil
}
