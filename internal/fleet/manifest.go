package fleet

import (
	"errors"
	"fmt"
	"io"
	"sync"

	"vrldram/internal/checkpoint"
	"vrldram/internal/core"
)

// ShardState is one shard's position in the campaign lifecycle:
//
//	planned -> running -> done
//	              |  ^
//	              v  |
//	           retrying -> quarantined
//
// Running is a live-process state only; a manifest loaded from disk
// normalizes it back to planned/retrying, because a shard that was running
// when the driver died produced nothing durable.
type ShardState uint8

const (
	ShardPlanned     ShardState = 1
	ShardRunning     ShardState = 2
	ShardRetrying    ShardState = 3
	ShardQuarantined ShardState = 4
	ShardDone        ShardState = 5
)

// String names the state for logs and reports.
func (st ShardState) String() string {
	switch st {
	case ShardPlanned:
		return "planned"
	case ShardRunning:
		return "running"
	case ShardRetrying:
		return "retrying"
	case ShardQuarantined:
		return "quarantined"
	case ShardDone:
		return "done"
	}
	return fmt.Sprintf("state(%d)", uint8(st))
}

// shardEntry is one shard's durable record.
type shardEntry struct {
	state    ShardState
	attempts int64  // attempts charged against the budget so far
	lastErr  string // most recent failure, for the coverage report
	result   []byte // encoded ShardResult once done
}

// Manifest is the campaign's durable source of truth: one entry per shard,
// bound to the Spec's canonical identity, persisted through the CRC-checked
// checkpoint container (KindManifest) with generation rotation. Every state
// transition saves atomically, so a driver killed at ANY point resumes with
// only completed shards marked done - a half-finished attempt leaves no
// trace, and recomputing it is deterministic anyway.
//
// With an empty path the manifest lives in memory only (same lifecycle, no
// durability) - for tests and throwaway campaigns.
type Manifest struct {
	mu      sync.Mutex
	spec    Spec
	shards  []shardEntry
	mgr     *checkpoint.Manager // nil when in-memory
	resumed int                 // shards loaded as done from a prior run
}

// NewManifest opens (or creates) the manifest for spec at path. An existing
// file must carry the exact same canonical Spec - resuming a campaign over a
// different population is refused, not reconciled. A corrupt-beyond-recovery
// or missing file is the clean start-fresh signal (checkpoint.ErrNoSnapshot
// internally) and yields a blank manifest.
func NewManifest(spec Spec, path string) (*Manifest, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	spec = spec.WithDefaults()
	m := &Manifest{spec: spec, shards: make([]shardEntry, spec.NumShards())}
	for i := range m.shards {
		m.shards[i].state = ShardPlanned
	}
	if path == "" {
		return m, nil
	}
	mgr, err := checkpoint.NewManager(path, 0)
	if err != nil {
		return nil, err
	}
	m.mgr = mgr
	var mismatch error
	_, err = mgr.Load(func(r io.Reader) error {
		payload, err := checkpoint.DecodeBlob(r, checkpoint.KindManifest)
		if err != nil {
			return err
		}
		loadedSpec, shards, err := decodeManifestPayload(payload)
		if err != nil {
			return err
		}
		if string(loadedSpec.Canonical()) != string(spec.Canonical()) {
			mismatch = fmt.Errorf("fleet: manifest at %s belongs to a different campaign spec", path)
			return mismatch
		}
		m.shards = shards
		return nil
	})
	if err != nil {
		// A wrong-campaign manifest is refused outright, never silently
		// replaced, even though Load files it with the other corrupt
		// candidates.
		if mismatch != nil {
			return nil, mismatch
		}
		if errors.Is(err, checkpoint.ErrNoSnapshot) {
			return m, nil // start fresh
		}
		return nil, err
	}
	// Normalize live-only state and count what a resumed driver inherits.
	for i := range m.shards {
		switch m.shards[i].state {
		case ShardRunning:
			if m.shards[i].attempts > 0 {
				m.shards[i].state = ShardRetrying
			} else {
				m.shards[i].state = ShardPlanned
			}
		case ShardDone:
			m.resumed++
		}
	}
	return m, nil
}

// Spec returns the campaign spec (defaults resolved).
func (m *Manifest) Spec() Spec { return m.spec }

// ResumedDone reports how many shards were already done when the manifest
// was loaded.
func (m *Manifest) ResumedDone() int { return m.resumed }

// Snapshot returns the current (state, attempts) of every shard.
func (m *Manifest) Snapshot() []struct {
	State    ShardState
	Attempts int
} {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]struct {
		State    ShardState
		Attempts int
	}, len(m.shards))
	for i, e := range m.shards {
		out[i].State = e.state
		out[i].Attempts = int(e.attempts)
	}
	return out
}

// MarkRunning charges one attempt and moves the shard to running.
func (m *Manifest) MarkRunning(i int) error {
	return m.transition(i, func(e *shardEntry) error {
		if e.state == ShardDone || e.state == ShardQuarantined {
			return fmt.Errorf("fleet: shard %d is terminal (%s)", i, e.state)
		}
		e.state = ShardRunning
		e.attempts++
		return nil
	})
}

// Uncharge refunds one attempt and parks the shard back to planned/retrying:
// the cancellation path, where an interrupted attempt must not eat into the
// retry budget it never really used.
func (m *Manifest) Uncharge(i int) error {
	return m.transition(i, func(e *shardEntry) error {
		if e.state != ShardRunning {
			return nil
		}
		if e.attempts > 0 {
			e.attempts--
		}
		if e.attempts > 0 {
			e.state = ShardRetrying
		} else {
			e.state = ShardPlanned
		}
		return nil
	})
}

// MarkFailed records a failed attempt and moves the shard to retrying.
func (m *Manifest) MarkFailed(i int, cause string) error {
	return m.transition(i, func(e *shardEntry) error {
		if e.state == ShardDone || e.state == ShardQuarantined {
			return nil // a hedge twin already settled the shard
		}
		e.state = ShardRetrying
		e.lastErr = cause
		return nil
	})
}

// MarkQuarantined retires the shard from the campaign.
func (m *Manifest) MarkQuarantined(i int, cause string) error {
	return m.transition(i, func(e *shardEntry) error {
		if e.state == ShardDone {
			return nil
		}
		e.state = ShardQuarantined
		e.lastErr = cause
		return nil
	})
}

// MarkDone records the shard's result. First result wins: a hedged
// duplicate arriving second is dropped without error (the results are
// byte-identical by construction, so which twin wins is unobservable).
func (m *Manifest) MarkDone(i int, r ShardResult) error {
	if r.Shard != i {
		return fmt.Errorf("fleet: result for shard %d offered to slot %d", r.Shard, i)
	}
	return m.transition(i, func(e *shardEntry) error {
		if e.state == ShardDone {
			return nil
		}
		e.state = ShardDone
		e.lastErr = ""
		e.result = r.Encode()
		return nil
	})
}

// Result decodes the stored result of a done shard.
func (m *Manifest) Result(i int) (ShardResult, bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if i < 0 || i >= len(m.shards) {
		return ShardResult{}, false, fmt.Errorf("fleet: shard %d outside manifest of %d", i, len(m.shards))
	}
	e := m.shards[i]
	if e.state != ShardDone {
		return ShardResult{}, false, nil
	}
	r, err := DecodeShardResult(e.result)
	if err != nil {
		return ShardResult{}, false, fmt.Errorf("fleet: shard %d stored result: %w", i, err)
	}
	return r, true, nil
}

// Quarantines lists the quarantined shards, ascending.
func (m *Manifest) Quarantines() []Quarantine {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []Quarantine
	for i, e := range m.shards {
		if e.state != ShardQuarantined {
			continue
		}
		start := i * m.spec.ShardSize
		count := m.spec.ShardSize
		if start+count > m.spec.Devices {
			count = m.spec.Devices - start
		}
		out = append(out, Quarantine{
			Shard: i, Start: start, Count: count,
			Attempts: int(e.attempts), LastErr: e.lastErr,
		})
	}
	return out
}

// transition applies fn to shard i under the lock and persists the new
// manifest state before returning. On a persistence error the in-memory
// mutation is kept (the engine carries on; durability degrades, correctness
// does not) and the error is reported.
func (m *Manifest) transition(i int, fn func(*shardEntry) error) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if i < 0 || i >= len(m.shards) {
		return fmt.Errorf("fleet: shard %d outside manifest of %d", i, len(m.shards))
	}
	if err := fn(&m.shards[i]); err != nil {
		return err
	}
	return m.saveLocked()
}

func (m *Manifest) saveLocked() error {
	if m.mgr == nil {
		return nil
	}
	payload := encodeManifestPayload(m.spec, m.shards)
	return m.mgr.Save(func(w io.Writer) error {
		return checkpoint.EncodeBlob(w, checkpoint.KindManifest, payload)
	})
}

// --- payload codec -----------------------------------------------------------

func encodeManifestPayload(spec Spec, shards []shardEntry) []byte {
	var e core.StateEncoder
	e.Tag("fman3")
	spec.encodeTo(&e)
	e.Int(int64(len(shards)))
	for _, s := range shards {
		e.Int(int64(s.state))
		e.Int(s.attempts)
		e.Bytes([]byte(s.lastErr))
		e.Bytes(s.result)
	}
	return e.Data()
}

// decodeManifestPayload parses and validates a manifest payload (the bytes
// inside the checkpoint container). It is the surface FuzzManifestDecode
// drives: every length is bounded, every state checked, and every stored
// result re-validated against the spec's own partition plan, so no sequence
// of bytes can produce a manifest the engine would trip over.
func decodeManifestPayload(payload []byte) (Spec, []shardEntry, error) {
	d := core.NewStateDecoder(payload)
	d.ExpectTag("fman3")
	spec := decodeSpecFrom(d)
	n := d.Int()
	if err := d.Err(); err != nil {
		return Spec{}, nil, err
	}
	if err := spec.Validate(); err != nil {
		return Spec{}, nil, err
	}
	spec = spec.WithDefaults()
	if n != int64(spec.NumShards()) {
		return Spec{}, nil, fmt.Errorf("fleet: manifest holds %d shards, spec plans %d", n, spec.NumShards())
	}
	shards := make([]shardEntry, n)
	for i := range shards {
		s := &shards[i]
		s.state = ShardState(d.Int())
		s.attempts = d.Int()
		s.lastErr = string(d.Bytes())
		s.result = d.Bytes()
		if d.Err() != nil {
			break
		}
		if s.state < ShardPlanned || s.state > ShardDone {
			return Spec{}, nil, fmt.Errorf("fleet: shard %d has invalid state %d", i, s.state)
		}
		if s.attempts < 0 {
			return Spec{}, nil, fmt.Errorf("fleet: shard %d has negative attempts %d", i, s.attempts)
		}
		if s.state == ShardDone {
			r, err := DecodeShardResult(s.result)
			if err != nil {
				return Spec{}, nil, fmt.Errorf("fleet: shard %d stored result: %v", i, err)
			}
			if r.Shard != i {
				return Spec{}, nil, fmt.Errorf("fleet: shard %d stores result for shard %d", i, r.Shard)
			}
		} else if len(s.result) != 0 {
			return Spec{}, nil, fmt.Errorf("fleet: non-done shard %d carries a result", i)
		}
	}
	if err := d.Finish(); err != nil {
		return Spec{}, nil, err
	}
	return spec, shards, nil
}
