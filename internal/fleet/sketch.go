package fleet

import (
	"fmt"
	"math"

	"vrldram/internal/core"
	"vrldram/internal/sim"
)

// Mergeable aggregates. Every accumulator in this file is an integer
// counter, which is the whole point: int64 addition is associative and
// commutative, so merging shard summaries in ANY order - completion order,
// index order, resumed-manifest order - produces the same bytes. Floating
// point sums would not survive reordering; the one float-born quantity we
// keep (restored charge) is quantized per device before it enters the
// aggregate.

// Hist is a fixed-bin histogram over [Lo, Hi): Bins equal-width bins plus
// explicit underflow/overflow counters, so no sample is silently dropped
// and two histograms merge exactly when their binning is identical.
type Hist struct {
	Lo, Hi float64
	Counts []int64
	Under  int64 // samples below Lo
	Over   int64 // samples at or above Hi
}

// NewHist builds an empty histogram; bins must be positive and Lo < Hi.
func NewHist(lo, hi float64, bins int) *Hist {
	if bins <= 0 || !(lo < hi) {
		panic(fmt.Sprintf("fleet: impossible histogram [%g,%g)/%d", lo, hi, bins))
	}
	return &Hist{Lo: lo, Hi: hi, Counts: make([]int64, bins)}
}

// Add records one sample.
func (h *Hist) Add(v float64) {
	switch {
	case math.IsNaN(v) || v >= h.Hi:
		h.Over++
	case v < h.Lo:
		h.Under++
	default:
		i := int(float64(len(h.Counts)) * (v - h.Lo) / (h.Hi - h.Lo))
		if i >= len(h.Counts) { // float edge: v just under Hi can round up
			i = len(h.Counts) - 1
		}
		h.Counts[i]++
	}
}

// Total returns the number of recorded samples.
func (h *Hist) Total() int64 {
	n := h.Under + h.Over
	for _, c := range h.Counts {
		n += c
	}
	return n
}

// Merge folds o into h. The binnings must match exactly; a mismatch means
// the two sides were built from different Specs and merging would be a
// silent statistical lie.
func (h *Hist) Merge(o *Hist) error {
	if o == nil {
		return nil
	}
	if h.Lo != o.Lo || h.Hi != o.Hi || len(h.Counts) != len(o.Counts) {
		return fmt.Errorf("fleet: histogram shape mismatch ([%g,%g)/%d vs [%g,%g)/%d)",
			h.Lo, h.Hi, len(h.Counts), o.Lo, o.Hi, len(o.Counts))
	}
	h.Under += o.Under
	h.Over += o.Over
	for i, c := range o.Counts {
		h.Counts[i] += c
	}
	return nil
}

// Quantile returns the upper edge of the bin holding the ceil(q*N)-th
// smallest sample - a rank-based estimate that is a pure function of the
// counts, so any two merged histograms with equal counts report equal
// quantiles. Underflow resolves to Lo, overflow to Hi. An empty histogram
// returns NaN.
func (h *Hist) Quantile(q float64) float64 {
	total := h.Total()
	if total == 0 {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	cum := h.Under
	if rank <= cum {
		return h.Lo
	}
	width := (h.Hi - h.Lo) / float64(len(h.Counts))
	for i, c := range h.Counts {
		cum += c
		if rank <= cum {
			return h.Lo + float64(i+1)*width
		}
	}
	return h.Hi
}

func (h *Hist) encodeTo(e *core.StateEncoder) {
	e.Float(h.Lo)
	e.Float(h.Hi)
	e.Int(int64(len(h.Counts)))
	for _, c := range h.Counts {
		e.Int(c)
	}
	e.Int(h.Under)
	e.Int(h.Over)
}

func decodeHistFrom(d *core.StateDecoder) *Hist {
	h := &Hist{Lo: d.Float(), Hi: d.Float()}
	n := d.Int()
	if d.Err() != nil {
		return h
	}
	if n <= 0 || n > maxHistBins {
		d.Fail("fleet: histogram bin count %d outside (0,%d]", n, maxHistBins)
		return h
	}
	h.Counts = make([]int64, n)
	for i := range h.Counts {
		h.Counts[i] = d.Int()
	}
	h.Under = d.Int()
	h.Over = d.Int()
	if d.Err() == nil {
		if !(h.Lo < h.Hi) || math.IsNaN(h.Lo) || math.IsNaN(h.Hi) {
			d.Fail("fleet: histogram range [%g,%g) invalid", h.Lo, h.Hi)
		}
		for _, c := range append([]int64{h.Under, h.Over}, h.Counts...) {
			if c < 0 {
				d.Fail("fleet: negative histogram count %d", c)
				break
			}
		}
	}
	return h
}

// maxHistBins bounds decoded histogram allocations against corrupt or
// hostile length fields (the container CRC catches corruption first; this
// guards the codec itself, fuzz included).
const maxHistBins = 1 << 16

// Summary binning. Fixed constants, not Spec knobs: summaries from any two
// campaigns over the same population merge, and the fuzz/codec surface has
// one shape to validate.
const (
	overheadBins   = 512 // refresh overhead, percent of wall time, [0, 32)%
	overheadMaxPct = 32.0
	violBins       = 256 // violations per device, [0, 256)
	violMax        = 256.0
	partialBins    = 256 // partial refreshes, percent of all refreshes, [0, 100)%
	partialMaxPct  = 100.0
	escBins        = 64 // guard escalations per device, [0, 64)
	escMax         = 64.0
	sloBins        = 64 // scrub SLO misses per device, [0, 64)
	sloMax         = 64.0
	spareBins      = 101 // spare-row utilization per device, [0, 101)%
	spareMaxPct    = 101.0
)

// Summary is the mergeable fleet aggregate: population-wide integer totals
// plus per-device distribution sketches.
type Summary struct {
	Devices          int64 // devices aggregated
	ViolatingDevices int64 // devices with at least one sub-limit sensing event
	WeakDevices      int64 // devices whose fault plan included the VRT injector
	Violations       int64
	FullRefreshes    int64
	PartialRefreshes int64
	BusyCycles       int64
	FaultsInjected   int64
	// ChargeMicro accumulates each device's normalized restored charge,
	// quantized to 1e-6 units per device so the sum is an integer (and the
	// merge therefore order-independent).
	ChargeMicro int64

	// Guard-pipeline totals (all zero unless the spec enabled the guard).
	GuardAlarms       int64
	GuardDemotions    int64
	GuardPromotions   int64
	GuardEscalations  int64
	GuardBreakerTrips int64

	// Scrub-pipeline totals (all zero unless the spec enabled the scrubber).
	ScrubCorrected     int64
	ScrubUncorrectable int64
	ScrubReprofiles    int64
	ScrubRemapped      int64
	ScrubHardFails     int64
	ScrubSLOMisses     int64

	Overhead     *Hist // per-device refresh overhead (% of wall time)
	DevViolation *Hist // per-device violation count
	PartialShare *Hist // per-device partial refreshes (% of refreshes)
	Escalations  *Hist // per-device guard escalations
	SLOMiss      *Hist // per-device scrub coverage-SLO misses
	SpareUse     *Hist // per-device spare-row utilization (% of budget consumed)
}

// NewSummary returns an empty summary with the standard binning.
func NewSummary() *Summary {
	return &Summary{
		Overhead:     NewHist(0, overheadMaxPct, overheadBins),
		DevViolation: NewHist(0, violMax, violBins),
		PartialShare: NewHist(0, partialMaxPct, partialBins),
		Escalations:  NewHist(0, escMax, escBins),
		SLOMiss:      NewHist(0, sloMax, sloBins),
		SpareUse:     NewHist(0, spareMaxPct, spareBins),
	}
}

// AddDevice folds one device's simulation statistics into the summary.
// tck is the device clock period (for the overhead fraction).
func (s *Summary) AddDevice(dev Device, st sim.Stats, tck float64) {
	s.Devices++
	if st.Violations > 0 {
		s.ViolatingDevices++
	}
	if dev.Weak {
		s.WeakDevices++
	}
	s.Violations += int64(st.Violations)
	s.FullRefreshes += st.FullRefreshes
	s.PartialRefreshes += st.PartialRefreshes
	s.BusyCycles += st.BusyCycles
	s.FaultsInjected += st.FaultsInjected
	s.ChargeMicro += int64(math.Round(st.ChargeRestored * 1e6))

	s.GuardAlarms += st.Guard.Alarms
	s.GuardDemotions += st.Guard.Demotions
	s.GuardPromotions += st.Guard.Promotions
	s.GuardEscalations += st.Guard.Escalations
	s.GuardBreakerTrips += st.Guard.BreakerTrips

	s.ScrubCorrected += st.Scrub.Corrected
	s.ScrubUncorrectable += st.Scrub.Uncorrectable
	s.ScrubReprofiles += st.Scrub.Reprofiles
	s.ScrubRemapped += st.Scrub.RowsRemapped
	s.ScrubHardFails += st.Scrub.HardFails
	s.ScrubSLOMisses += st.Scrub.SLOMisses

	s.Overhead.Add(100 * st.OverheadFraction(tck))
	s.DevViolation.Add(float64(st.Violations))
	if total := st.Refreshes(); total > 0 {
		s.PartialShare.Add(100 * float64(st.PartialRefreshes) / float64(total))
	} else {
		s.PartialShare.Add(0)
	}
	// Every device lands in every sketch (zero when the pipeline is off or
	// idle), so each histogram's Total always equals Devices and merges
	// from guarded and unguarded campaigns stay shape-compatible.
	s.Escalations.Add(float64(st.Guard.Escalations))
	s.SLOMiss.Add(float64(st.Scrub.SLOMisses))
	if budget := st.Scrub.RowsRemapped + int64(st.Scrub.SparesLeft); budget > 0 {
		s.SpareUse.Add(100 * float64(st.Scrub.RowsRemapped) / float64(budget))
	} else {
		s.SpareUse.Add(0)
	}
}

// Merge folds o into s. Merging is associative and commutative, so shard
// summaries may arrive in any order - including twice-resumed manifest
// order - and produce identical bytes.
func (s *Summary) Merge(o *Summary) error {
	if o == nil {
		return nil
	}
	if err := s.Overhead.Merge(o.Overhead); err != nil {
		return err
	}
	if err := s.DevViolation.Merge(o.DevViolation); err != nil {
		return err
	}
	if err := s.PartialShare.Merge(o.PartialShare); err != nil {
		return err
	}
	if err := s.Escalations.Merge(o.Escalations); err != nil {
		return err
	}
	if err := s.SLOMiss.Merge(o.SLOMiss); err != nil {
		return err
	}
	if err := s.SpareUse.Merge(o.SpareUse); err != nil {
		return err
	}
	s.Devices += o.Devices
	s.ViolatingDevices += o.ViolatingDevices
	s.WeakDevices += o.WeakDevices
	s.Violations += o.Violations
	s.FullRefreshes += o.FullRefreshes
	s.PartialRefreshes += o.PartialRefreshes
	s.BusyCycles += o.BusyCycles
	s.FaultsInjected += o.FaultsInjected
	s.ChargeMicro += o.ChargeMicro
	s.GuardAlarms += o.GuardAlarms
	s.GuardDemotions += o.GuardDemotions
	s.GuardPromotions += o.GuardPromotions
	s.GuardEscalations += o.GuardEscalations
	s.GuardBreakerTrips += o.GuardBreakerTrips
	s.ScrubCorrected += o.ScrubCorrected
	s.ScrubUncorrectable += o.ScrubUncorrectable
	s.ScrubReprofiles += o.ScrubReprofiles
	s.ScrubRemapped += o.ScrubRemapped
	s.ScrubHardFails += o.ScrubHardFails
	s.ScrubSLOMisses += o.ScrubSLOMisses
	return nil
}

// Encode renders the summary canonically; equal summaries produce equal
// bytes, which is how the chaos tests assert exact fleet-level equality.
func (s *Summary) Encode() []byte {
	var e core.StateEncoder
	e.Tag("fsum2")
	s.encodeTo(&e)
	return e.Data()
}

func (s *Summary) encodeTo(e *core.StateEncoder) {
	e.Int(s.Devices)
	e.Int(s.ViolatingDevices)
	e.Int(s.WeakDevices)
	e.Int(s.Violations)
	e.Int(s.FullRefreshes)
	e.Int(s.PartialRefreshes)
	e.Int(s.BusyCycles)
	e.Int(s.FaultsInjected)
	e.Int(s.ChargeMicro)
	e.Int(s.GuardAlarms)
	e.Int(s.GuardDemotions)
	e.Int(s.GuardPromotions)
	e.Int(s.GuardEscalations)
	e.Int(s.GuardBreakerTrips)
	e.Int(s.ScrubCorrected)
	e.Int(s.ScrubUncorrectable)
	e.Int(s.ScrubReprofiles)
	e.Int(s.ScrubRemapped)
	e.Int(s.ScrubHardFails)
	e.Int(s.ScrubSLOMisses)
	s.Overhead.encodeTo(e)
	s.DevViolation.encodeTo(e)
	s.PartialShare.encodeTo(e)
	s.Escalations.encodeTo(e)
	s.SLOMiss.encodeTo(e)
	s.SpareUse.encodeTo(e)
}

func decodeSummaryFrom(d *core.StateDecoder) *Summary {
	s := &Summary{}
	s.Devices = d.Int()
	s.ViolatingDevices = d.Int()
	s.WeakDevices = d.Int()
	s.Violations = d.Int()
	s.FullRefreshes = d.Int()
	s.PartialRefreshes = d.Int()
	s.BusyCycles = d.Int()
	s.FaultsInjected = d.Int()
	s.ChargeMicro = d.Int()
	s.GuardAlarms = d.Int()
	s.GuardDemotions = d.Int()
	s.GuardPromotions = d.Int()
	s.GuardEscalations = d.Int()
	s.GuardBreakerTrips = d.Int()
	s.ScrubCorrected = d.Int()
	s.ScrubUncorrectable = d.Int()
	s.ScrubReprofiles = d.Int()
	s.ScrubRemapped = d.Int()
	s.ScrubHardFails = d.Int()
	s.ScrubSLOMisses = d.Int()
	s.Overhead = decodeHistFrom(d)
	s.DevViolation = decodeHistFrom(d)
	s.PartialShare = decodeHistFrom(d)
	s.Escalations = decodeHistFrom(d)
	s.SLOMiss = decodeHistFrom(d)
	s.SpareUse = decodeHistFrom(d)
	if d.Err() == nil && (s.Devices < 0 || s.Violations < 0) {
		d.Fail("fleet: negative summary counters")
	}
	return s
}

// DecodeSummary parses a canonical summary blob.
func DecodeSummary(blob []byte) (*Summary, error) {
	d := core.NewStateDecoder(blob)
	d.ExpectTag("fsum2")
	s := decodeSummaryFrom(d)
	if err := d.Finish(); err != nil {
		return nil, err
	}
	return s, nil
}
