package fleet

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestManifestPersistsTransitions(t *testing.T) {
	spec := testFleetSpec()
	path := filepath.Join(t.TempDir(), "fleet.manifest")
	m, err := NewManifest(spec, path)
	if err != nil {
		t.Fatal(err)
	}
	shards := spec.Shards()
	if err := m.MarkRunning(0); err != nil {
		t.Fatal(err)
	}
	if err := m.MarkDone(0, fakeResult(shards[0])); err != nil {
		t.Fatal(err)
	}
	if err := m.MarkRunning(1); err != nil {
		t.Fatal(err)
	}
	if err := m.MarkFailed(1, "wobble"); err != nil {
		t.Fatal(err)
	}
	if err := m.MarkRunning(2); err != nil {
		t.Fatal(err)
	}
	if err := m.MarkQuarantined(2, "poison"); err != nil {
		t.Fatal(err)
	}
	if err := m.MarkRunning(3); err != nil {
		t.Fatal(err)
	}
	// Shard 3 was mid-attempt when the "driver died"; nothing durable exists
	// for it, so the reloaded manifest must not believe it is running.

	m2, err := NewManifest(spec, path)
	if err != nil {
		t.Fatal(err)
	}
	snap := m2.Snapshot()
	if snap[0].State != ShardDone || m2.ResumedDone() != 1 {
		t.Fatalf("shard 0 reloaded as %s (resumed=%d), want done/1", snap[0].State, m2.ResumedDone())
	}
	if snap[1].State != ShardRetrying || snap[1].Attempts != 1 {
		t.Fatalf("shard 1 reloaded as %s/%d attempts, want retrying/1", snap[1].State, snap[1].Attempts)
	}
	if snap[2].State != ShardQuarantined {
		t.Fatalf("shard 2 reloaded as %s, want quarantined", snap[2].State)
	}
	if snap[3].State != ShardRetrying || snap[3].Attempts != 1 {
		t.Fatalf("mid-attempt shard 3 reloaded as %s/%d, want retrying/1", snap[3].State, snap[3].Attempts)
	}
	r, ok, err := m2.Result(0)
	if err != nil || !ok {
		t.Fatalf("shard 0 result: ok=%v err=%v", ok, err)
	}
	if string(r.Encode()) != string(fakeResult(shards[0]).Encode()) {
		t.Fatal("reloaded shard 0 result not byte-identical")
	}
	qs := m2.Quarantines()
	if len(qs) != 1 || qs[0].Shard != 2 || qs[0].LastErr != "poison" {
		t.Fatalf("quarantines reloaded as %+v", qs)
	}
}

func TestManifestFirstResultWins(t *testing.T) {
	spec := testFleetSpec()
	m, err := NewManifest(spec, "")
	if err != nil {
		t.Fatal(err)
	}
	ss := spec.Shards()[0]
	if err := m.MarkRunning(0); err != nil {
		t.Fatal(err)
	}
	if err := m.MarkDone(0, fakeResult(ss)); err != nil {
		t.Fatal(err)
	}
	// The hedge twin lands second: silently dropped.
	if err := m.MarkDone(0, fakeResult(ss)); err != nil {
		t.Fatal(err)
	}
	// And a late failure from the loser must not un-finish the shard.
	if err := m.MarkFailed(0, "loser"); err != nil {
		t.Fatal(err)
	}
	if st := m.Snapshot()[0].State; st != ShardDone {
		t.Fatalf("shard 0 state %s after hedge race, want done", st)
	}
	// A result claiming the wrong shard index is refused loudly.
	wrong := fakeResult(spec.Shards()[1])
	if err := m.MarkDone(0, wrong); err == nil {
		t.Fatal("result for shard 1 must not land in slot 0")
	}
}

func TestManifestRefusesForeignSpec(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fleet.manifest")
	specA := testFleetSpec()
	m, err := NewManifest(specA, path)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.MarkRunning(0); err != nil { // first transition persists the manifest
		t.Fatal(err)
	}
	specB := specA
	specB.Seed++
	_, err = NewManifest(specB, path)
	if err == nil || !strings.Contains(err.Error(), "different campaign") {
		t.Fatalf("foreign-spec manifest open returned %v, want refusal", err)
	}
}

func TestManifestAllGenerationsCorruptStartsFresh(t *testing.T) {
	spec := testFleetSpec()
	path := filepath.Join(t.TempDir(), "fleet.manifest")
	m, err := NewManifest(spec, path)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.MarkRunning(0); err != nil {
		t.Fatal(err)
	}
	if err := m.MarkDone(0, fakeResult(spec.Shards()[0])); err != nil {
		t.Fatal(err)
	}
	// Torch every generation on disk.
	matches, err := filepath.Glob(path + "*")
	if err != nil || len(matches) == 0 {
		t.Fatalf("no manifest generations on disk (err=%v)", err)
	}
	for _, p := range matches {
		if err := os.WriteFile(p, []byte("not a manifest at all"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	m2, err := NewManifest(spec, path)
	if err != nil {
		t.Fatalf("all-corrupt manifest must start fresh, got %v", err)
	}
	if m2.ResumedDone() != 0 {
		t.Fatalf("fresh manifest claims %d resumed shards", m2.ResumedDone())
	}
	// And the fresh manifest must rotate cleanly past the wreckage.
	if err := m2.MarkRunning(1); err != nil {
		t.Fatal(err)
	}
	if err := m2.MarkDone(1, fakeResult(spec.Shards()[1])); err != nil {
		t.Fatal(err)
	}
	m3, err := NewManifest(spec, path)
	if err != nil {
		t.Fatal(err)
	}
	if m3.ResumedDone() != 1 {
		t.Fatalf("post-wreckage save not recoverable: resumed=%d", m3.ResumedDone())
	}
}

// FuzzManifestDecode drives the manifest payload codec with arbitrary bytes:
// it must never panic, and any payload it accepts must be internally
// consistent and re-encode to something it accepts again.
func FuzzManifestDecode(f *testing.F) {
	spec := testFleetSpec()
	blank := make([]shardEntry, spec.NumShards())
	for i := range blank {
		blank[i].state = ShardPlanned
	}
	f.Add(encodeManifestPayload(spec, blank))

	busy := make([]shardEntry, spec.NumShards())
	for i := range busy {
		busy[i] = shardEntry{state: ShardRetrying, attempts: 2, lastErr: "wobble"}
	}
	busy[0] = shardEntry{state: ShardDone, result: fakeResult(spec.Shards()[0]).Encode()}
	busy[2] = shardEntry{state: ShardQuarantined, attempts: 3, lastErr: "poison"}
	f.Add(encodeManifestPayload(spec, busy))
	f.Add([]byte{})
	f.Add([]byte("fman3"))

	f.Fuzz(func(t *testing.T, payload []byte) {
		decSpec, shards, err := decodeManifestPayload(payload)
		if err != nil {
			return
		}
		if err := decSpec.Validate(); err != nil {
			t.Fatalf("accepted payload carries invalid spec: %v", err)
		}
		if len(shards) != decSpec.NumShards() {
			t.Fatalf("accepted payload holds %d shards, spec plans %d", len(shards), decSpec.NumShards())
		}
		for i, s := range shards {
			if s.state < ShardPlanned || s.state > ShardDone {
				t.Fatalf("accepted shard %d in invalid state %d", i, s.state)
			}
			if s.attempts < 0 {
				t.Fatalf("accepted shard %d with negative attempts", i)
			}
			if s.state == ShardDone {
				if _, err := DecodeShardResult(s.result); err != nil {
					t.Fatalf("accepted done shard %d with undecodable result: %v", i, err)
				}
			}
		}
		re := encodeManifestPayload(decSpec, shards)
		if _, _, err := decodeManifestPayload(re); err != nil {
			t.Fatalf("re-encoded accepted payload no longer decodes: %v", err)
		}
	})
}
