package fleet

import (
	"context"
	"testing"

	"vrldram/internal/scenario"
)

// realSpec is a small population that exercises real simulations: hot and
// cool devices, weak-cell fault plans, a mixed scenario catalog with the
// guard and scrub pipelines wired, and a short tail shard.
func realSpec() Spec {
	return Spec{
		Devices:    5,
		Seed:       11,
		Scheduler:  "vrl",
		Duration:   0.2,
		Rows:       256,
		Cols:       4,
		ShardSize:  2,
		TempSwingC: 10,
		WeakFrac:   0.5,
		Scenarios: scenario.Mix{Items: []scenario.Weighted{
			{Ref: scenario.Ref{Name: "diurnal"}, Weight: 2},
			{Ref: scenario.Ref{Name: "vrt-storm"}, Weight: 1},
			{Ref: scenario.Ref{Name: "kitchen-sink"}, Weight: 1},
		}},
		Guard: true,
		Scrub: true,
	}
}

// TestRunShardDeterministic runs the same shard twice with independent
// caches: byte-identical results are the contract every retry, hedge, and
// resume in the engine silently relies on.
func TestRunShardDeterministic(t *testing.T) {
	ss := realSpec().Shards()[0]
	a, err := RunShard(context.Background(), ss, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunShard(context.Background(), ss, nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(a.Encode()) != string(b.Encode()) {
		t.Fatal("same shard, independent caches, different bytes")
	}
	if a.Sum.Devices != int64(ss.Count) {
		t.Fatalf("shard summary covers %d devices, shard holds %d", a.Sum.Devices, ss.Count)
	}
	if a.Sum.FullRefreshes+a.Sum.PartialRefreshes == 0 {
		t.Fatal("shard simulated no refreshes; the spec window is too short to test anything")
	}
}

// TestLocalCampaignMatchesSequential is the end-to-end determinism property
// on real simulations: a concurrent engine run over local executors produces
// byte-identical merged statistics to the single-goroutine sequential loop.
func TestLocalCampaignMatchesSequential(t *testing.T) {
	spec := realSpec()
	want, err := RunSequential(context.Background(), spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(context.Background(), spec, []Executor{NewLocalExecutor(3)}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Complete() {
		t.Fatalf("local campaign incomplete: quarantined %v", rep.QuarantinedShards())
	}
	if string(rep.Sum.Encode()) != string(want.Encode()) {
		t.Fatal("concurrent local campaign diverges from sequential oracle")
	}
	if rep.Sum.WeakDevices == 0 {
		t.Fatal("population drew no weak devices; WeakFrac plumbing is dead")
	}
	// The guard/scrub sketches land every device (zero observations count),
	// so the merged histograms must cover the whole population.
	for name, h := range map[string]*Hist{
		"escalations": rep.Sum.Escalations,
		"slo-miss":    rep.Sum.SLOMiss,
		"spare-use":   rep.Sum.SpareUse,
	} {
		if h.Total() != rep.Sum.Devices {
			t.Fatalf("%s sketch covers %d devices, population has %d", name, h.Total(), rep.Sum.Devices)
		}
	}
}

// TestRunShardHonorsCancellation: a cancelled context stops the shard with
// the context's error instead of returning a partial summary.
func TestRunShardHonorsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunShard(ctx, realSpec().Shards()[0], nil); err == nil {
		t.Fatal("cancelled shard run must fail, not return partial data")
	}
}
