package fleet

import (
	"context"
	"fmt"

	"vrldram/internal/core"
	"vrldram/internal/device"
	"vrldram/internal/dram"
	"vrldram/internal/ecc"
	"vrldram/internal/fault"
	"vrldram/internal/guard"
	"vrldram/internal/profcache"
	"vrldram/internal/profiler"
	"vrldram/internal/retention"
	"vrldram/internal/scenario"
	"vrldram/internal/scrub"
	"vrldram/internal/sim"
)

// TCK returns the clock period every population member simulates under (the
// paper's 90nm device parameters): the denominator of the overhead sketch.
func (s Spec) TCK() float64 { return device.Default90nm().TCK }

// RunDevice simulates one population member and returns its statistics.
// Everything is rebuilt deterministically from (spec, dev): the retention
// profile from the device's own Monte Carlo seed, the scheduler from the
// PROFILED view, and the bank from the TRUE view derated to the device's
// operating temperature - so a hot device misbehaves behind the scheduler's
// back exactly the way fault.TemperatureExcursion models. Weak devices
// additionally carry a VRT process seeded per device; devices that drew a
// scenario from the spec's workload catalog decay under that composed
// stress schedule (with the weak-cell VRT folded in as one of its
// stressors, so overlapping modulations integrate exactly). Guard and
// scrub, when the spec enables them, wrap the scheduler stack the same way
// vrlfault's campaigns do. Retrying, hedging, or recomputing a device
// therefore always yields identical Stats.
func RunDevice(ctx context.Context, spec Spec, dev Device, cache *profcache.Cache) (sim.Stats, error) {
	spec = spec.WithDefaults()
	params := device.Default90nm()
	geom := device.BankGeometry{Rows: spec.Rows, Cols: spec.Cols}
	dist := retention.DefaultCellDistribution()

	profile, err := cache.Profile(geom, dist, dev.Seed)
	if err != nil {
		return sim.Stats{}, err
	}
	restore, err := cache.PaperRestoreModel(params, geom)
	if err != nil {
		return sim.Stats{}, err
	}
	var sched core.Scheduler
	switch spec.Scheduler {
	case "jedec":
		sched, err = core.NewJEDEC(params.TRetNom, restore)
	case "raidr":
		sched, err = core.NewRAIDR(profile, core.Config{Restore: restore})
	case "vrl":
		sched, err = core.NewVRL(profile, core.Config{Restore: restore})
	case "vrl-access":
		sched, err = core.NewVRLAccess(profile, core.Config{Restore: restore})
	default:
		err = fmt.Errorf("fleet: unknown scheduler %q", spec.Scheduler)
	}
	if err != nil {
		return sim.Stats{}, err
	}
	// The scrubber's repair target: the guard when present, else the raw
	// scheduler (a policy without demote/promote hooks just ignores them).
	repairTarget := sched
	if spec.Guard {
		g, err := guard.New(sched, spec.Rows, guard.Config{Restore: restore})
		if err != nil {
			return sim.Stats{}, err
		}
		sched, repairTarget = g, g
	}

	// The bank obeys physics at the device's temperature; the scheduler only
	// ever sees the profiled (reference-temperature) values. Cooler devices
	// gain margin, hotter ones lose it.
	bankProf := profile
	tm := retention.DefaultTempModel()
	if dev.TempC != tm.RefC {
		bankProf, err = fault.TemperatureExcursion(profile, tm, dev.TempC)
		if err != nil {
			return sim.Stats{}, err
		}
	}
	bank, err := dram.NewBank(bankProf, retention.ExpDecay{}, retention.PatternAllZeros)
	if err != nil {
		return sim.Stats{}, err
	}

	var env *scenario.Env
	if dev.Scenario.Name != "" {
		env, err = scenario.BuildEnv(dev.Scenario, spec.Duration, dev.ScenSeed)
		if err != nil {
			return sim.Stats{}, err
		}
	}
	if dev.Weak {
		vrt := fault.DefaultTransientWeakCells(dev.WeakSeed)
		if env != nil {
			// A bank runs one retention view, so the weak-cell telegraph
			// joins the scenario as a stressor: its draws come from its own
			// WeakSeed either way, and the Env integrates the overlap with
			// the other stressors exactly.
			env.Stressors = append(env.Stressors, scenario.VRTStressor{Label: "weak-cells", V: *vrt})
		} else if err := bank.SetVRT(vrt); err != nil {
			return sim.Stats{}, err
		}
	}
	opts := sim.Options{Duration: spec.Duration, TCK: params.TCK, Backend: spec.Backend}
	if env != nil {
		if err := bank.SetModulator(env); err != nil {
			return sim.Stats{}, err
		}
		opts.Scenario = env
	}

	if spec.Scrub {
		cls := ecc.DefaultClassifier()
		store, err := scrub.NewBankStore(bank, cls)
		if err != nil {
			return sim.Stats{}, err
		}
		scr, err := scrub.New(store, scrub.Config{
			Sched:       repairTarget,
			SweepPeriod: spec.ScrubSweep,
			Spares:      spec.Spares,
			Reprofile: func(row int) (float64, error) {
				return profiler.ProfileRow(bankProf, retention.ExpDecay{}, row, profiler.Options{})
			},
		})
		if err != nil {
			return sim.Stats{}, err
		}
		opts.ECC = &cls
		opts.Scrub = scr
	}
	return sim.RunContext(ctx, bank, sched, nil, opts)
}
