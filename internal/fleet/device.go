package fleet

import (
	"context"
	"fmt"

	"vrldram/internal/core"
	"vrldram/internal/device"
	"vrldram/internal/dram"
	"vrldram/internal/fault"
	"vrldram/internal/profcache"
	"vrldram/internal/retention"
	"vrldram/internal/sim"
)

// TCK returns the clock period every population member simulates under (the
// paper's 90nm device parameters): the denominator of the overhead sketch.
func (s Spec) TCK() float64 { return device.Default90nm().TCK }

// RunDevice simulates one population member and returns its statistics.
// Everything is rebuilt deterministically from (spec, dev): the retention
// profile from the device's own Monte Carlo seed, the scheduler from the
// PROFILED view, and the bank from the TRUE view derated to the device's
// operating temperature - so a hot device misbehaves behind the scheduler's
// back exactly the way fault.TemperatureExcursion models. Weak devices
// additionally carry a VRT process seeded per device. Retrying, hedging, or
// recomputing a device therefore always yields identical Stats.
func RunDevice(ctx context.Context, spec Spec, dev Device, cache *profcache.Cache) (sim.Stats, error) {
	spec = spec.WithDefaults()
	params := device.Default90nm()
	geom := device.BankGeometry{Rows: spec.Rows, Cols: spec.Cols}
	dist := retention.DefaultCellDistribution()

	profile, err := cache.Profile(geom, dist, dev.Seed)
	if err != nil {
		return sim.Stats{}, err
	}
	restore, err := cache.PaperRestoreModel(params, geom)
	if err != nil {
		return sim.Stats{}, err
	}
	var sched core.Scheduler
	switch spec.Scheduler {
	case "jedec":
		sched, err = core.NewJEDEC(params.TRetNom, restore)
	case "raidr":
		sched, err = core.NewRAIDR(profile, core.Config{Restore: restore})
	case "vrl":
		sched, err = core.NewVRL(profile, core.Config{Restore: restore})
	case "vrl-access":
		sched, err = core.NewVRLAccess(profile, core.Config{Restore: restore})
	default:
		err = fmt.Errorf("fleet: unknown scheduler %q", spec.Scheduler)
	}
	if err != nil {
		return sim.Stats{}, err
	}

	// The bank obeys physics at the device's temperature; the scheduler only
	// ever sees the profiled (reference-temperature) values. Cooler devices
	// gain margin, hotter ones lose it.
	bankProf := profile
	tm := retention.DefaultTempModel()
	if dev.TempC != tm.RefC {
		bankProf, err = fault.TemperatureExcursion(profile, tm, dev.TempC)
		if err != nil {
			return sim.Stats{}, err
		}
	}
	bank, err := dram.NewBank(bankProf, retention.ExpDecay{}, retention.PatternAllZeros)
	if err != nil {
		return sim.Stats{}, err
	}
	if dev.Weak {
		if err := bank.SetVRT(fault.DefaultTransientWeakCells(dev.WeakSeed)); err != nil {
			return sim.Stats{}, err
		}
	}
	return sim.RunContext(ctx, bank, sched, nil, sim.Options{Duration: spec.Duration, TCK: params.TCK})
}
