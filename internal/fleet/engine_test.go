package fleet

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// fakeExec is a scriptable executor over fakeResult: run decides each
// attempt's fate keyed by (shard, per-shard call count).
type fakeExec struct {
	name  string
	slots int

	mu    sync.Mutex
	calls map[int]int // per-shard attempts seen, hedges included
	run   func(ss ShardSpec, call int) error
}

func newFakeExec(name string, slots int, run func(ss ShardSpec, call int) error) *fakeExec {
	return &fakeExec{name: name, slots: slots, calls: map[int]int{}, run: run}
}

func (f *fakeExec) Name() string { return f.name }
func (f *fakeExec) Slots() int   { return f.slots }

func (f *fakeExec) RunShard(ctx context.Context, ss ShardSpec) (ShardResult, error) {
	f.mu.Lock()
	f.calls[ss.Index]++
	call := f.calls[ss.Index]
	f.mu.Unlock()
	if f.run != nil {
		if err := f.run(ss, call); err != nil {
			return ShardResult{}, err
		}
	}
	if err := ctx.Err(); err != nil {
		return ShardResult{}, err
	}
	return fakeResult(ss), nil
}

func (f *fakeExec) callCount(shard int) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.calls[shard]
}

// fastOpts keeps engine test retries in the millisecond range.
func fastOpts() Options {
	return Options{
		MaxAttempts: 3,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  5 * time.Millisecond,
	}
}

// wantSum merges fakeResult over every non-skipped shard - the oracle every
// engine test compares against, byte for byte.
func wantSum(spec Spec, skip map[int]bool) []byte {
	sum := NewSummary()
	for _, ss := range spec.Shards() {
		if skip[ss.Index] {
			continue
		}
		if err := sum.Merge(fakeResult(ss).Sum); err != nil {
			panic(err)
		}
	}
	return sum.Encode()
}

func TestEngineCleanRun(t *testing.T) {
	spec := testFleetSpec()
	ex := newFakeExec("a", 3, nil)
	rep, err := Run(context.Background(), spec, []Executor{ex}, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Complete() || rep.ShardsDone != spec.NumShards() {
		t.Fatalf("clean run incomplete: %d/%d done, quarantined %v", rep.ShardsDone, rep.ShardsTotal, rep.QuarantinedShards())
	}
	if got := rep.Sum.Encode(); string(got) != string(wantSum(spec, nil)) {
		t.Fatal("clean-run summary diverges from sequential merge")
	}
	if rep.Retries != 0 || rep.Hedges != 0 {
		t.Fatalf("clean run reports %d retries, %d hedges", rep.Retries, rep.Hedges)
	}
}

func TestEngineRetriesTransientFailure(t *testing.T) {
	spec := testFleetSpec()
	ex := newFakeExec("a", 2, func(ss ShardSpec, call int) error {
		if ss.Index == 1 && call <= 2 {
			return fmt.Errorf("transient wobble %d", call)
		}
		return nil
	})
	rep, err := Run(context.Background(), spec, []Executor{ex}, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Complete() {
		t.Fatalf("retryable failure must not cost coverage: quarantined %v", rep.QuarantinedShards())
	}
	if rep.Retries < 2 {
		t.Fatalf("report shows %d retries, want >= 2", rep.Retries)
	}
	if got := ex.callCount(1); got != 3 {
		t.Fatalf("shard 1 ran %d times, want 3", got)
	}
	if string(rep.Sum.Encode()) != string(wantSum(spec, nil)) {
		t.Fatal("summary after retries diverges from sequential merge")
	}
}

// TestEngineQuarantinesPoisonShard is the coverage-report contract: a shard
// that fails every attempt is set aside, the campaign completes, and the
// report names exactly that shard while the merged summary covers exactly
// the rest.
func TestEngineQuarantinesPoisonShard(t *testing.T) {
	spec := testFleetSpec()
	const poison = 2
	ex := newFakeExec("a", 2, func(ss ShardSpec, call int) error {
		if ss.Index == poison {
			return errors.New("poison shard")
		}
		return nil
	})
	rep, err := Run(context.Background(), spec, []Executor{ex}, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Complete() {
		t.Fatal("poisoned campaign must not claim completeness")
	}
	if got := rep.QuarantinedShards(); len(got) != 1 || got[0] != poison {
		t.Fatalf("quarantined %v, want exactly [%d]", got, poison)
	}
	q := rep.Quarantined[0]
	if q.Attempts != 3 || q.LastErr != "poison shard" {
		t.Fatalf("quarantine record %+v, want 3 attempts and the poison cause", q)
	}
	if rep.DevicesSkipped() != int64(q.Count) {
		t.Fatalf("DevicesSkipped = %d, want %d", rep.DevicesSkipped(), q.Count)
	}
	if string(rep.Sum.Encode()) != string(wantSum(spec, map[int]bool{poison: true})) {
		t.Fatal("summary must cover exactly the non-quarantined population")
	}
}

func TestEnginePermanentErrorSkipsRetries(t *testing.T) {
	spec := testFleetSpec()
	ex := newFakeExec("a", 2, func(ss ShardSpec, call int) error {
		if ss.Index == 0 {
			return MarkPermanent(errors.New("rejected for keeps"))
		}
		return nil
	})
	rep, err := Run(context.Background(), spec, []Executor{ex}, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.QuarantinedShards(); len(got) != 1 || got[0] != 0 {
		t.Fatalf("quarantined %v, want [0]", got)
	}
	if got := ex.callCount(0); got != 1 {
		t.Fatalf("permanent failure burned %d attempts, want 1", got)
	}
}

func TestEnginePanicIsolation(t *testing.T) {
	spec := testFleetSpec()
	ex := newFakeExec("a", 2, func(ss ShardSpec, call int) error {
		if ss.Index == 3 && call == 1 {
			panic("executor bug")
		}
		return nil
	})
	rep, err := Run(context.Background(), spec, []Executor{ex}, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Complete() {
		t.Fatalf("a panicking attempt must retry, not sink the campaign: quarantined %v", rep.QuarantinedShards())
	}
	if string(rep.Sum.Encode()) != string(wantSum(spec, nil)) {
		t.Fatal("summary after panic recovery diverges")
	}
}

// TestEngineShardTimeout pins the deadline plumbing: the context an executor
// receives must carry the configured per-attempt timeout.
func TestEngineShardTimeout(t *testing.T) {
	spec := testFleetSpec()
	sawDeadline := make(chan time.Duration, 1)
	probe := &deadlineProbe{inner: newFakeExec("a", 1, nil), got: sawDeadline}
	opts := fastOpts()
	opts.ShardTimeout = 250 * time.Millisecond
	if _, err := Run(context.Background(), spec, []Executor{probe}, opts); err != nil {
		t.Fatal(err)
	}
	select {
	case d := <-sawDeadline:
		if d <= 0 || d > 250*time.Millisecond {
			t.Fatalf("attempt deadline %v, want within (0, 250ms]", d)
		}
	default:
		t.Fatal("executor never saw an attempt deadline")
	}
}

type deadlineProbe struct {
	inner Executor
	got   chan time.Duration
}

func (p *deadlineProbe) Name() string { return p.inner.Name() }
func (p *deadlineProbe) Slots() int   { return p.inner.Slots() }
func (p *deadlineProbe) RunShard(ctx context.Context, ss ShardSpec) (ShardResult, error) {
	if dl, ok := ctx.Deadline(); ok {
		select {
		case p.got <- time.Until(dl):
		default:
		}
	}
	return p.inner.RunShard(ctx, ss)
}

// TestEngineHedgesStraggler wires a shard whose first attempt stalls until a
// hedged duplicate lands, and checks first-result-wins accounting: the shard
// is counted once, the summary is exact, and the hedge shows up in the
// dispatch counters without charging the attempt budget.
func TestEngineHedgesStraggler(t *testing.T) {
	spec := testFleetSpec()
	const straggler = 1
	release := make(chan struct{})
	var once sync.Once
	ex := newFakeExec("a", 2, nil)
	ex.run = func(ss ShardSpec, call int) error {
		if ss.Index == straggler {
			if call == 1 {
				<-release // stall until the hedge completes
			} else {
				once.Do(func() { close(release) })
			}
		}
		return nil
	}
	opts := fastOpts()
	opts.HedgeAfter = 20 * time.Millisecond
	rep, err := Run(context.Background(), spec, []Executor{ex}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Complete() {
		t.Fatalf("hedged campaign incomplete: quarantined %v", rep.QuarantinedShards())
	}
	if rep.Hedges < 1 {
		t.Fatalf("report shows %d hedges, want >= 1", rep.Hedges)
	}
	if rep.Retries != 0 {
		t.Fatalf("hedges must not charge the retry counter, got %d retries", rep.Retries)
	}
	if string(rep.Sum.Encode()) != string(wantSum(spec, nil)) {
		t.Fatal("summary after hedge race diverges - a shard was double-counted or lost")
	}
}

// TestEngineResumeAfterInterrupt kills a campaign partway (context cancel,
// the in-process stand-in for a dead driver) and resumes it from the same
// manifest: the resumed run must redo only unfinished shards and the final
// summary must be byte-identical to an uninterrupted run.
func TestEngineResumeAfterInterrupt(t *testing.T) {
	spec := testFleetSpec()
	path := filepath.Join(t.TempDir(), "fleet.manifest")

	ctx, cancel := context.WithCancel(context.Background())
	var done sync.Map
	var fired sync.Once
	ex := newFakeExec("a", 1, nil)
	ex.run = func(ss ShardSpec, call int) error {
		var n int
		done.Range(func(_, _ any) bool { n++; return true })
		if n >= 2 {
			fired.Do(cancel) // driver dies after two shards landed
			return ctx.Err()
		}
		done.Store(ss.Index, true)
		return nil
	}
	opts := fastOpts()
	opts.ManifestPath = path
	_, err := Run(ctx, spec, []Executor{ex}, opts)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted run returned %v, want context.Canceled", err)
	}

	ex2 := newFakeExec("b", 2, nil)
	rep, err := Run(context.Background(), spec, []Executor{ex2}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Complete() {
		t.Fatalf("resumed campaign incomplete: quarantined %v", rep.QuarantinedShards())
	}
	if rep.Resumed < 2 {
		t.Fatalf("resumed run inherited %d done shards, want >= 2", rep.Resumed)
	}
	for s := 0; s < spec.NumShards(); s++ {
		if _, ok := done.Load(s); ok && ex2.callCount(s) != 0 {
			t.Fatalf("resumed run re-ran already-done shard %d", s)
		}
	}
	if string(rep.Sum.Encode()) != string(wantSum(spec, nil)) {
		t.Fatal("resumed summary diverges from uninterrupted merge")
	}
}

// TestEngineInterruptRefundsBudget checks the cancellation path never eats
// the retry budget: a shard interrupted mid-attempt resumes with its full
// budget and can still be retried MaxAttempts times afterwards.
func TestEngineInterruptRefundsBudget(t *testing.T) {
	spec := testFleetSpec()
	path := filepath.Join(t.TempDir(), "fleet.manifest")

	ctx, cancel := context.WithCancel(context.Background())
	ex := newFakeExec("a", 1, nil)
	ex.run = func(ss ShardSpec, call int) error {
		cancel() // die inside the very first attempt
		return ctx.Err()
	}
	opts := fastOpts()
	opts.ManifestPath = path
	if _, err := Run(ctx, spec, []Executor{ex}, opts); !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted run returned %v, want context.Canceled", err)
	}

	man, err := NewManifest(spec, path)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range man.Snapshot() {
		if s.Attempts != 0 {
			t.Fatalf("shard %d resumed with %d charged attempts, want 0 (interrupt must refund)", i, s.Attempts)
		}
		if s.State != ShardPlanned {
			t.Fatalf("shard %d resumed in state %s, want planned", i, s.State)
		}
	}
}

func TestEngineMultipleExecutors(t *testing.T) {
	spec := testFleetSpec()
	a := newFakeExec("a", 1, nil)
	b := newFakeExec("b", 1, nil)
	rep, err := Run(context.Background(), spec, []Executor{a, b}, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Complete() {
		t.Fatal("two-executor campaign incomplete")
	}
	if string(rep.Sum.Encode()) != string(wantSum(spec, nil)) {
		t.Fatal("summary across two executors diverges")
	}
}
