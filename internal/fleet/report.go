package fleet

import (
	"fmt"
	"io"
	"math"
)

// Quarantine records one shard that exhausted its attempt budget (or failed
// permanently) and was set aside so the rest of the campaign could finish.
type Quarantine struct {
	Shard    int
	Start    int
	Count    int
	Attempts int
	LastErr  string
}

// Report is the outcome of a campaign: the merged summary over every
// completed shard plus the explicit coverage ledger. A campaign with
// quarantined shards still returns a Report - partial coverage is a result,
// not an error - and Complete() says whether the whole population was
// covered.
type Report struct {
	Spec        Spec
	Sum         *Summary
	ShardsTotal int
	ShardsDone  int
	Quarantined []Quarantine // ascending shard index

	Attempts int64 // shard attempts launched, including hedges
	Retries  int64 // attempts beyond each shard's first
	Hedges   int64 // duplicate attempts launched against stragglers
	Resumed  int   // shards whose results were recovered from the manifest
}

// Complete reports whether every shard finished (nothing quarantined).
func (r *Report) Complete() bool { return len(r.Quarantined) == 0 }

// QuarantinedShards returns the quarantined shard indices, ascending.
func (r *Report) QuarantinedShards() []int {
	out := make([]int, len(r.Quarantined))
	for i, q := range r.Quarantined {
		out[i] = q.Shard
	}
	return out
}

// DevicesSkipped counts population members left uncovered by quarantine.
func (r *Report) DevicesSkipped() int64 {
	var n int64
	for _, q := range r.Quarantined {
		n += int64(q.Count)
	}
	return n
}

func fmtQuantile(h *Hist, q float64, unit string) string {
	v := h.Quantile(q)
	if math.IsNaN(v) {
		return "-"
	}
	return fmt.Sprintf("%.3g%s", v, unit)
}

// Fprint renders the human-readable campaign report.
func (r *Report) Fprint(w io.Writer) {
	s := r.Spec.WithDefaults()
	fmt.Fprintf(w, "fleet campaign: %d devices, scheduler %s, %.3gs window, seed %d\n",
		s.Devices, s.Scheduler, s.Duration, s.Seed)
	fmt.Fprintf(w, "coverage: %d/%d shards done, %d devices covered, %d skipped\n",
		r.ShardsDone, r.ShardsTotal, r.Sum.Devices, r.DevicesSkipped())
	fmt.Fprintf(w, "dispatch: %d attempts (%d retries, %d hedges), %d shard(s) resumed from manifest\n",
		r.Attempts, r.Retries, r.Hedges, r.Resumed)
	fmt.Fprintf(w, "totals: %d full + %d partial refreshes, %d violations across %d device(s), %d faults injected\n",
		r.Sum.FullRefreshes, r.Sum.PartialRefreshes, r.Sum.Violations, r.Sum.ViolatingDevices, r.Sum.FaultsInjected)
	fmt.Fprintf(w, "refresh overhead: p50 %s  p99 %s  p99.9 %s (%% of wall time)\n",
		fmtQuantile(r.Sum.Overhead, 0.50, ""), fmtQuantile(r.Sum.Overhead, 0.99, ""), fmtQuantile(r.Sum.Overhead, 0.999, ""))
	fmt.Fprintf(w, "partial-refresh share: p50 %s  p99 %s (%% of refreshes); weak devices: %d\n",
		fmtQuantile(r.Sum.PartialShare, 0.50, ""), fmtQuantile(r.Sum.PartialShare, 0.99, ""), r.Sum.WeakDevices)
	if !s.Scenarios.Empty() {
		fmt.Fprintf(w, "scenario catalog: %s\n", s.Scenarios.String())
	}
	if s.Guard {
		fmt.Fprintf(w, "guard: %d alarms, %d demotions, %d promotions, %d breaker trips; escalations p99 %s\n",
			r.Sum.GuardAlarms, r.Sum.GuardDemotions, r.Sum.GuardPromotions, r.Sum.GuardBreakerTrips,
			fmtQuantile(r.Sum.Escalations, 0.99, ""))
	}
	if s.Scrub {
		fmt.Fprintf(w, "scrub: %d corrected, %d uncorrectable, %d reprofiles, %d remapped, %d hard fails; SLO misses p99 %s, spare use p99 %s%%\n",
			r.Sum.ScrubCorrected, r.Sum.ScrubUncorrectable, r.Sum.ScrubReprofiles, r.Sum.ScrubRemapped,
			r.Sum.ScrubHardFails, fmtQuantile(r.Sum.SLOMiss, 0.99, ""), fmtQuantile(r.Sum.SpareUse, 0.99, ""))
	}
	if len(r.Quarantined) == 0 {
		fmt.Fprintf(w, "quarantine: none - full population covered\n")
		return
	}
	fmt.Fprintf(w, "quarantine: %d shard(s) left uncovered\n", len(r.Quarantined))
	for _, q := range r.Quarantined {
		fmt.Fprintf(w, "  shard %d (devices %d-%d) after %d attempt(s): %s\n",
			q.Shard, q.Start, q.Start+q.Count-1, q.Attempts, q.LastErr)
	}
}
