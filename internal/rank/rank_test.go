package rank

import (
	"testing"

	"vrldram/internal/core"
	"vrldram/internal/device"
	"vrldram/internal/dram"
	"vrldram/internal/retention"
)

const (
	testRows = 1024
	testCols = 32
)

func buildRank(t *testing.T, n int, mk func(*retention.BankProfile) (core.Scheduler, error)) ([]*dram.Bank, []core.Scheduler) {
	t.Helper()
	banks, scheds, err := NewRank(n, retention.DefaultCellDistribution(), testRows, testCols, 11, mk)
	if err != nil {
		t.Fatal(err)
	}
	return banks, scheds
}

func mkRAIDR(t *testing.T) func(*retention.BankProfile) (core.Scheduler, error) {
	t.Helper()
	rm := restoreModel(t)
	return func(p *retention.BankProfile) (core.Scheduler, error) {
		return core.NewRAIDR(p, core.Config{Restore: rm})
	}
}

func mkVRL(t *testing.T) func(*retention.BankProfile) (core.Scheduler, error) {
	t.Helper()
	rm := restoreModel(t)
	return func(p *retention.BankProfile) (core.Scheduler, error) {
		return core.NewVRL(p, core.Config{Restore: rm})
	}
}

func restoreModel(t *testing.T) core.RestoreModel {
	t.Helper()
	rm, err := core.PaperRestoreModel(device.Default90nm(), device.PaperBank)
	if err != nil {
		t.Fatal(err)
	}
	return rm
}

func opts(mode Mode) Options {
	return Options{Mode: mode, Duration: 0.256, TCK: device.Default90nm().TCK}
}

func TestModeString(t *testing.T) {
	if PerBank.String() != "per-bank" || AllBank.String() != "all-bank" {
		t.Fatal("mode names wrong")
	}
	if Mode(9).String() == "" {
		t.Fatal("unknown mode must stringify")
	}
}

func TestNewRankValidation(t *testing.T) {
	if _, _, err := NewRank(0, retention.DefaultCellDistribution(), testRows, testCols, 1, mkRAIDR(t)); err == nil {
		t.Fatal("zero banks must be rejected")
	}
}

func TestRunValidation(t *testing.T) {
	banks, scheds := buildRank(t, 2, mkRAIDR(t))
	if _, err := Run(nil, nil, opts(PerBank)); err == nil {
		t.Fatal("empty rank must be rejected")
	}
	if _, err := Run(banks, scheds[:1], opts(PerBank)); err == nil {
		t.Fatal("mismatched lengths must be rejected")
	}
	bad := opts(PerBank)
	bad.Duration = 0
	if _, err := Run(banks, scheds, bad); err == nil {
		t.Fatal("zero duration must be rejected")
	}
	weird := opts(PerBank)
	weird.Mode = Mode(9)
	if _, err := Run(banks, scheds, weird); err == nil {
		t.Fatal("unknown mode must be rejected")
	}
}

func TestPerBankSumsIndependentBanks(t *testing.T) {
	banks, scheds := buildRank(t, 4, mkRAIDR(t))
	st, err := Run(banks, scheds, opts(PerBank))
	if err != nil {
		t.Fatal(err)
	}
	if st.Banks != 4 || st.Mode != "per-bank" {
		t.Fatalf("%+v", st)
	}
	if st.Violations != 0 {
		t.Fatalf("violations: %d", st.Violations)
	}
	if st.RefreshCommands == 0 || st.BankBusyCycles == 0 {
		t.Fatal("no refresh accounted")
	}
	if st.RankBlockedCycles != 0 {
		t.Fatal("staggered per-bank refresh must not block the whole rank")
	}
	if st.PartialCommands != 0 {
		t.Fatal("RAIDR issues no partials")
	}
}

func TestAllBankBlocksRank(t *testing.T) {
	banks, scheds := buildRank(t, 4, mkRAIDR(t))
	st, err := Run(banks, scheds, opts(AllBank))
	if err != nil {
		t.Fatal(err)
	}
	if st.Violations != 0 {
		t.Fatalf("violations: %d", st.Violations)
	}
	if st.RankBlockedCycles == 0 {
		t.Fatal("all-bank commands must block the rank")
	}
	if st.BankBusyCycles != st.RankBlockedCycles*int64(st.Banks) {
		t.Fatal("all-bank busy accounting inconsistent")
	}
}

func TestAllBankBinningDilution(t *testing.T) {
	// All-bank refresh must issue at the weakest bank's rate, so it costs
	// more bank-busy cycles than per-bank refresh under the same policy.
	banksA, schedsA := buildRank(t, 4, mkRAIDR(t))
	per, err := Run(banksA, schedsA, opts(PerBank))
	if err != nil {
		t.Fatal(err)
	}
	banksB, schedsB := buildRank(t, 4, mkRAIDR(t))
	all, err := Run(banksB, schedsB, opts(AllBank))
	if err != nil {
		t.Fatal(err)
	}
	if all.BankBusyCycles <= per.BankBusyCycles {
		t.Fatalf("all-bank (%d) should cost more than per-bank (%d)", all.BankBusyCycles, per.BankBusyCycles)
	}
}

func TestAllBankDilutesVRL(t *testing.T) {
	// Per-bank: VRL/RAIDR keeps its calibrated saving. All-bank: a command
	// is full if ANY bank needs full, so the saving shrinks.
	ratio := func(mode Mode) float64 {
		banksR, schedsR := buildRank(t, 4, mkRAIDR(t))
		raidr, err := Run(banksR, schedsR, opts(mode))
		if err != nil {
			t.Fatal(err)
		}
		banksV, schedsV := buildRank(t, 4, mkVRL(t))
		vrl, err := Run(banksV, schedsV, opts(mode))
		if err != nil {
			t.Fatal(err)
		}
		if raidr.Violations+vrl.Violations != 0 {
			t.Fatal("violations in safe configurations")
		}
		return float64(vrl.BankBusyCycles) / float64(raidr.BankBusyCycles)
	}
	perRatio := ratio(PerBank)
	allRatio := ratio(AllBank)
	if perRatio >= 1 {
		t.Fatalf("per-bank VRL must beat RAIDR, ratio %v", perRatio)
	}
	if allRatio <= perRatio {
		t.Fatalf("all-bank refresh should dilute VRL's saving: per-bank %v, all-bank %v", perRatio, allRatio)
	}
}

func TestAllBankRejectsMismatchedGeometry(t *testing.T) {
	banks, scheds := buildRank(t, 2, mkRAIDR(t))
	small, smallScheds, err := NewRank(1, retention.DefaultCellDistribution(), testRows/2, testCols, 3, mkRAIDR(t))
	if err != nil {
		t.Fatal(err)
	}
	mixed := append(banks[:1], small[0])
	mixedScheds := append(scheds[:1], smallScheds[0])
	if _, err := Run(mixed, mixedScheds, opts(AllBank)); err == nil {
		t.Fatal("mismatched bank geometry must be rejected in all-bank mode")
	}
}
