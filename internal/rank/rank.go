// Package rank models refresh at the rank level: a rank is a set of banks
// that can either refresh independently (per-bank refresh, DDR4 REFpb-style,
// the mode the paper's single-bank evaluation implies) or through all-bank
// refresh commands (DDR3 REFab-style) that hold every bank for the duration
// of the slowest one.
//
// All-bank refresh interacts badly with both of the retention-aware ideas
// this repository implements, and this package quantifies it:
//
//   - binning dilution: an all-bank command refreshing row r must satisfy
//     the WEAKEST bank's bin for r, so strong banks refresh too often;
//   - latency dilution: the command's tRFC is the MAXIMUM over banks, so a
//     single bank needing a full refresh forces every bank to wait out the
//     full latency even if the others only needed partials.
package rank

import (
	"container/heap"
	"fmt"

	"vrldram/internal/core"
	"vrldram/internal/device"
	"vrldram/internal/dram"
	"vrldram/internal/retention"
	"vrldram/internal/sim"
)

// Mode selects the refresh command granularity.
type Mode int

// Refresh command modes.
const (
	// PerBank refreshes each bank independently; other banks stay available.
	PerBank Mode = iota
	// AllBank issues rank-wide refresh commands that block every bank.
	AllBank
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case PerBank:
		return "per-bank"
	case AllBank:
		return "all-bank"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Options configures a rank run.
type Options struct {
	Mode     Mode
	Duration float64 // s
	TCK      float64 // s
}

// Stats aggregates a rank-level run.
type Stats struct {
	Mode      string
	Scheduler string
	Banks     int

	RefreshCommands int64 // commands issued (per-bank: bank-row ops; all-bank: rank-row ops)
	FullCommands    int64 // commands at full tRFC (all-bank: any bank full)
	PartialCommands int64

	// BankBusyCycles sums, over banks, the cycles each bank was blocked by
	// refresh: the lost-service metric.
	BankBusyCycles int64
	// RankBlockedCycles counts cycles during which EVERY bank was blocked
	// simultaneously (all-bank commands; ~0 for per-bank refresh with
	// staggered schedules).
	RankBlockedCycles int64

	Violations int
}

// NewRank builds per-bank profiles, banks, and schedulers for a rank of n
// banks; profiles are drawn independently per bank (real ranks mix chips).
func NewRank(n int, dist retention.CellDistribution, geomRows, geomCols int, seed int64,
	mkSched func(*retention.BankProfile) (core.Scheduler, error)) ([]*dram.Bank, []core.Scheduler, error) {
	if n <= 0 {
		return nil, nil, fmt.Errorf("rank: need at least one bank, got %d", n)
	}
	banks := make([]*dram.Bank, n)
	scheds := make([]core.Scheduler, n)
	for b := 0; b < n; b++ {
		profile, err := retention.NewSampledProfile(
			device.BankGeometry{Rows: geomRows, Cols: geomCols}, dist, seed+int64(b)*7919)
		if err != nil {
			return nil, nil, err
		}
		bank, err := dram.NewBank(profile, retention.ExpDecay{}, retention.PatternAllZeros)
		if err != nil {
			return nil, nil, err
		}
		sched, err := mkSched(profile)
		if err != nil {
			return nil, nil, err
		}
		banks[b] = bank
		scheds[b] = sched
	}
	return banks, scheds, nil
}

// Run simulates the rank's refresh traffic in the selected mode.
func Run(banks []*dram.Bank, scheds []core.Scheduler, opts Options) (Stats, error) {
	if len(banks) == 0 || len(banks) != len(scheds) {
		return Stats{}, fmt.Errorf("rank: need matching banks and schedulers, got %d/%d", len(banks), len(scheds))
	}
	if opts.Duration <= 0 || opts.TCK <= 0 {
		return Stats{}, fmt.Errorf("rank: Duration and TCK must be positive")
	}
	switch opts.Mode {
	case PerBank:
		return runPerBank(banks, scheds, opts)
	case AllBank:
		return runAllBank(banks, scheds, opts)
	default:
		return Stats{}, fmt.Errorf("rank: unknown mode %d", opts.Mode)
	}
}

// runPerBank reuses the single-bank simulator per bank and sums.
func runPerBank(banks []*dram.Bank, scheds []core.Scheduler, opts Options) (Stats, error) {
	st := Stats{Mode: PerBank.String(), Scheduler: scheds[0].Name(), Banks: len(banks)}
	for b := range banks {
		bs, err := sim.Run(banks[b], scheds[b], nil, sim.Options{Duration: opts.Duration, TCK: opts.TCK})
		if err != nil {
			return Stats{}, fmt.Errorf("rank: bank %d: %w", b, err)
		}
		st.RefreshCommands += bs.Refreshes()
		st.FullCommands += bs.FullRefreshes
		st.PartialCommands += bs.PartialRefreshes
		st.BankBusyCycles += bs.BusyCycles
		st.Violations += bs.Violations
	}
	// With golden-ratio staggering and sub-0.1% per-bank duty, simultaneous
	// blocking of every bank is measure-zero at this granularity.
	st.RankBlockedCycles = 0
	return st, nil
}

// rowEvent drives the all-bank timeline.
type rowEvent struct {
	t   float64
	row int
}

type rowHeap []rowEvent

func (h rowHeap) Len() int { return len(h) }
func (h rowHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].row < h[j].row
}
func (h rowHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *rowHeap) Push(x interface{}) { *h = append(*h, x.(rowEvent)) }
func (h *rowHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// runAllBank issues rank-wide commands: row r refreshes in every bank at the
// MINIMUM of the banks' periods for r, and the command's latency is the
// MAXIMUM of the per-bank operations.
func runAllBank(banks []*dram.Bank, scheds []core.Scheduler, opts Options) (Stats, error) {
	st := Stats{Mode: AllBank.String(), Scheduler: scheds[0].Name(), Banks: len(banks)}
	rows := banks[0].Geom.Rows
	for b := range banks {
		if banks[b].Geom.Rows != rows {
			return Stats{}, fmt.Errorf("rank: bank %d has %d rows, want %d", b, banks[b].Geom.Rows, rows)
		}
	}
	period := func(row int) float64 {
		min := scheds[0].Period(row)
		for _, s := range scheds[1:] {
			if p := s.Period(row); p < min {
				min = p
			}
		}
		return min
	}
	h := make(rowHeap, 0, rows)
	for r := 0; r < rows; r++ {
		p := period(r)
		if p <= 0 {
			return Stats{}, fmt.Errorf("rank: period for row %d is %g", r, p)
		}
		h = append(h, rowEvent{t: stagger(r) * p, row: r})
	}
	heap.Init(&h)
	for h.Len() > 0 {
		ev := heap.Pop(&h).(rowEvent)
		if ev.t >= opts.Duration {
			continue
		}
		maxCycles := 0
		anyFull := false
		for b := range banks {
			op := scheds[b].RefreshOp(ev.row, ev.t)
			if _, err := banks[b].Refresh(ev.row, ev.t, op.Alpha); err != nil {
				return Stats{}, err
			}
			if op.Cycles > maxCycles {
				maxCycles = op.Cycles
			}
			anyFull = anyFull || op.Full
		}
		st.RefreshCommands++
		if anyFull {
			st.FullCommands++
		} else {
			st.PartialCommands++
		}
		// Every bank is blocked for the command's (maximum) latency.
		st.BankBusyCycles += int64(maxCycles) * int64(len(banks))
		st.RankBlockedCycles += int64(maxCycles)
		heap.Push(&h, rowEvent{t: ev.t + period(ev.row), row: ev.row})
	}
	for b := range banks {
		if _, err := banks[b].CheckAll(opts.Duration); err != nil {
			return Stats{}, err
		}
		st.Violations += len(banks[b].Violations())
	}
	return st, nil
}

func stagger(row int) float64 {
	const phi = 0.6180339887498949
	f := float64(row) * phi
	return f - float64(int64(f))
}
