// Package lut provides monotone piecewise-cubic lookup tables: uniform-grid
// Hermite interpolants with Fritsch-Carlson limited slopes, so a table built
// from monotone samples is monotone everywhere between them - no
// interpolation overshoot, which is what makes precomputed decay and
// restore curves safe to substitute for their analytic originals. Accuracy
// is not taken on faith: Gate sweeps a refinement grid against the original
// function and reports the worst deviation, and the consumers (the
// retention decay LUT, the analytic restore-alpha LUT) refuse to construct
// unless that deviation passes their tolerance.
package lut

import (
	"fmt"
	"math"
)

// Table is a monotone piecewise-cubic interpolant of a scalar function over
// [A, B] on a uniform grid.
type Table struct {
	a, b    float64
	step    float64
	invStep float64
	y       []float64 // samples y[i] = f(a + i*step)
	m       []float64 // Fritsch-Carlson limited slopes at the samples
}

// New samples f at n uniform points across [a, b] and fits the monotone
// cubic. n must be at least 2 and every sample must be finite.
func New(f func(float64) float64, a, b float64, n int) (*Table, error) {
	if !(b > a) {
		return nil, fmt.Errorf("lut: domain [%g, %g] is empty", a, b)
	}
	if n < 2 {
		return nil, fmt.Errorf("lut: need at least 2 samples, got %d", n)
	}
	t := &Table{a: a, b: b, step: (b - a) / float64(n-1)}
	t.invStep = 1 / t.step
	t.y = make([]float64, n)
	for i := range t.y {
		x := a + float64(i)*t.step
		if i == n-1 {
			x = b
		}
		v := f(x)
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("lut: sample at x=%g is %g", x, v)
		}
		t.y[i] = v
	}
	t.m = fritschCarlson(t.y, t.step)
	return t, nil
}

// fritschCarlson computes sample slopes that keep the cubic Hermite
// interpolant monotone wherever the samples are (Fritsch & Carlson, SIAM
// J. Numer. Anal. 1980): centered-difference slopes, zeroed at local
// extrema, then scaled back into the monotonicity region |(alpha, beta)|
// <= 3 of each interval.
func fritschCarlson(y []float64, h float64) []float64 {
	n := len(y)
	d := make([]float64, n-1) // secant slopes
	for i := range d {
		d[i] = (y[i+1] - y[i]) / h
	}
	m := make([]float64, n)
	m[0], m[n-1] = d[0], d[n-2]
	if n >= 3 {
		// Second-order one-sided endpoint slopes (the PCHIP edge rule):
		// the plain secant is only first-order and would cost the first
		// and last cells two digits of accuracy.
		m[0] = edgeSlope(d[0], d[1])
		m[n-1] = edgeSlope(d[n-2], d[n-3])
	}
	for i := 1; i < n-1; i++ {
		if d[i-1]*d[i] <= 0 {
			m[i] = 0
		} else {
			m[i] = (d[i-1] + d[i]) / 2
		}
	}
	for i := 0; i < n-1; i++ {
		if d[i] == 0 {
			m[i], m[i+1] = 0, 0
			continue
		}
		alpha := m[i] / d[i]
		beta := m[i+1] / d[i]
		if s := alpha*alpha + beta*beta; s > 9 {
			tau := 3 / math.Sqrt(s)
			m[i] = tau * alpha * d[i]
			m[i+1] = tau * beta * d[i]
		}
	}
	return m
}

// edgeSlope is the three-point endpoint slope estimate on a uniform grid,
// clamped so the boundary cell stays monotone: zero if it points against
// the boundary secant, capped at three times it otherwise.
func edgeSlope(d0, d1 float64) float64 {
	m := (3*d0 - d1) / 2
	if m*d0 <= 0 {
		return 0
	}
	if math.Abs(m) > 3*math.Abs(d0) {
		return 3 * d0
	}
	return m
}

// Bounds returns the table's domain.
func (t *Table) Bounds() (a, b float64) { return t.a, t.b }

// Eval interpolates at x, clamping x into the domain first (callers that
// need out-of-domain behaviour route around the table themselves).
func (t *Table) Eval(x float64) float64 {
	if x <= t.a {
		return t.y[0]
	}
	if x >= t.b {
		return t.y[len(t.y)-1]
	}
	u := (x - t.a) * t.invStep
	i := int(u)
	if i > len(t.y)-2 {
		i = len(t.y) - 2
	}
	s := u - float64(i)
	// Cubic Hermite basis on [0, 1].
	s2 := s * s
	s3 := s2 * s
	h00 := 2*s3 - 3*s2 + 1
	h10 := s3 - 2*s2 + s
	h01 := -2*s3 + 3*s2
	h11 := s3 - s2
	return h00*t.y[i] + h10*t.step*t.m[i] + h01*t.y[i+1] + h11*t.step*t.m[i+1]
}

// Gate sweeps a refinement grid - perCell probe points inside every sample
// interval, plus the samples themselves - comparing the table against f,
// and returns the worst absolute deviation. A deviation above tol is an
// error: the table is not an acceptable substitute for f at that
// tolerance.
func (t *Table) Gate(f func(float64) float64, tol float64, perCell int) (float64, error) {
	if perCell < 1 {
		perCell = 1
	}
	maxErr, maxAt := 0.0, t.a
	check := func(x float64) {
		if e := math.Abs(t.Eval(x) - f(x)); e > maxErr {
			maxErr, maxAt = e, x
		}
	}
	for i := 0; i < len(t.y)-1; i++ {
		x0 := t.a + float64(i)*t.step
		check(x0)
		for k := 1; k <= perCell; k++ {
			check(x0 + t.step*float64(k)/float64(perCell+1))
		}
	}
	check(t.b)
	if maxErr > tol {
		return maxErr, fmt.Errorf("lut: max deviation %.3g at x=%g exceeds tolerance %.3g", maxErr, maxAt, tol)
	}
	return maxErr, nil
}
