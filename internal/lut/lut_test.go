package lut

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

func TestNewValidation(t *testing.T) {
	id := func(x float64) float64 { return x }
	if _, err := New(id, 1, 1, 8); err == nil {
		t.Fatal("empty domain accepted")
	}
	if _, err := New(id, 2, 1, 8); err == nil {
		t.Fatal("inverted domain accepted")
	}
	if _, err := New(id, 0, 1, 1); err == nil {
		t.Fatal("single-sample table accepted")
	}
	if _, err := New(func(x float64) float64 { return math.Log(x) }, -1, 1, 8); err == nil {
		t.Fatal("NaN sample accepted")
	}
	if _, err := New(func(x float64) float64 { return 1 / x }, 0, 1, 8); err == nil {
		t.Fatal("infinite sample accepted")
	}
}

// TestEvalExactAtSamples: a cubic Hermite interpolant passes through its
// samples by construction; Eval at a grid point must return the sample bit
// for bit (the batched decay path relies on this for t=0 and domain edges).
func TestEvalExactAtSamples(t *testing.T) {
	f := func(x float64) float64 { return math.Exp2(-x) }
	const n = 33
	tab, err := New(f, 0, 4, n)
	if err != nil {
		t.Fatal(err)
	}
	a, b := tab.Bounds()
	if a != 0 || b != 4 {
		t.Fatalf("Bounds() = (%g, %g), want (0, 4)", a, b)
	}
	step := (b - a) / (n - 1)
	for i := 0; i < n; i++ {
		x := a + float64(i)*step
		if i == n-1 {
			x = b
		}
		if got, want := tab.Eval(x), f(x); got != want {
			t.Fatalf("Eval(%g) = %.17g, want sample %.17g", x, got, want)
		}
	}
}

func TestEvalClampsOutsideDomain(t *testing.T) {
	f := func(x float64) float64 { return x * x }
	tab, err := New(f, 1, 3, 17)
	if err != nil {
		t.Fatal(err)
	}
	if got := tab.Eval(0); got != f(1) {
		t.Fatalf("Eval below domain = %g, want clamp to f(a)=%g", got, f(1))
	}
	if got := tab.Eval(10); got != f(3) {
		t.Fatalf("Eval above domain = %g, want clamp to f(b)=%g", got, f(3))
	}
	if got := tab.Eval(math.Inf(1)); got != f(3) {
		t.Fatalf("Eval(+Inf) = %g, want clamp to f(b)=%g", got, f(3))
	}
}

// TestMonotone is the Fritsch-Carlson property: tables over monotone
// functions must be monotone at every evaluation point, with no
// interpolation overshoot between samples.
func TestMonotone(t *testing.T) {
	cases := []struct {
		name string
		f    func(float64) float64
		a, b float64
	}{
		{"exp-decay", func(x float64) float64 { return math.Exp2(-x) }, 0, 16},
		{"restore", func(x float64) float64 { return 1 - math.Exp(-x) }, 0, 24},
		{"linear-clamped", func(x float64) float64 { return math.Max(0, 1-x/2) }, 0, 2},
		{"sqrt", math.Sqrt, 0, 9},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tab, err := New(tc.f, tc.a, tc.b, 257)
			if err != nil {
				t.Fatal(err)
			}
			incr := tc.f(tc.b) >= tc.f(tc.a)
			prev := tab.Eval(tc.a)
			const probes = 10000
			for k := 1; k <= probes; k++ {
				x := tc.a + (tc.b-tc.a)*float64(k)/probes
				v := tab.Eval(x)
				if incr && v < prev || !incr && v > prev {
					t.Fatalf("non-monotone at x=%g: %.17g after %.17g", x, v, prev)
				}
				prev = v
			}
		})
	}
}

// TestGateAccuracy pins the expected convergence: a smooth function on a
// dense grid gates tightly, and Gate reports the same value it returns.
func TestGateAccuracy(t *testing.T) {
	f := func(x float64) float64 { return math.Exp2(-x) }
	tab, err := New(f, 0, 8, 1<<12+1)
	if err != nil {
		t.Fatal(err)
	}
	maxErr, err := tab.Gate(f, 1e-9, 4)
	if err != nil {
		t.Fatalf("gate failed: %v", err)
	}
	if maxErr <= 0 || maxErr > 1e-9 {
		t.Fatalf("maxErr = %g, want in (0, 1e-9]", maxErr)
	}
	// Random spot probes stay within the gated bound (the gate's refinement
	// grid is dense enough that no point between probes can exceed ~2x it).
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		x := 8 * rng.Float64()
		if e := math.Abs(tab.Eval(x) - f(x)); e > 2*maxErr+1e-15 {
			t.Fatalf("spot error %g at x=%g exceeds gated bound %g", e, x, maxErr)
		}
	}
}

func TestGateRejectsCoarseTable(t *testing.T) {
	f := func(x float64) float64 { return math.Exp2(-x) }
	tab, err := New(f, 0, 8, 9) // far too coarse for 1e-9
	if err != nil {
		t.Fatal(err)
	}
	maxErr, err := tab.Gate(f, 1e-9, 4)
	if err == nil {
		t.Fatalf("coarse table passed a 1e-9 gate (maxErr %g)", maxErr)
	}
	if !strings.Contains(err.Error(), "exceeds tolerance") {
		t.Fatalf("unexpected gate error: %v", err)
	}
	if maxErr <= 1e-9 {
		t.Fatalf("gate errored but reported maxErr %g within tolerance", maxErr)
	}
}
