// Package cli carries the conventions shared by every vrldram command:
// signal-aware contexts and the common exit paths, so each binary wires
// SIGINT/SIGTERM the same way instead of growing its own variant.
package cli

import (
	"context"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"syscall"
)

// StatusInterrupted is the conventional exit status for a run ended by a
// signal or deadline (vrlsim established it; every command follows).
const StatusInterrupted = 3

// SignalContext derives a context that is cancelled on SIGINT or SIGTERM.
// The returned stop function restores default signal delivery, so a second
// signal kills the process the usual way.
func SignalContext(parent context.Context) (context.Context, context.CancelFunc) {
	return signal.NotifyContext(parent, os.Interrupt, syscall.SIGTERM)
}

// ExitOnSignal lets a command whose inner loops are not context-aware still
// honor SignalContext: when ctx dies, one line goes to stderr and the
// process exits with StatusInterrupted. The caller must NOT cancel ctx on
// its normal completion path (normal process exit simply abandons the
// watcher); cancel only to mean "stop now".
func ExitOnSignal(ctx context.Context, name string) {
	go func() {
		<-ctx.Done()
		fmt.Fprintf(os.Stderr, "%s: interrupted\n", name)
		os.Exit(StatusInterrupted)
	}()
}

// InterruptExit is the whole signal story for a command with no
// context-aware inner loops: SignalContext plus ExitOnSignal, with the stop
// function deliberately discarded so normal completion can never race the
// watcher into a spurious interrupted exit.
func InterruptExit(name string) {
	ctx, _ := SignalContext(context.Background())
	ExitOnSignal(ctx, name)
}

// Fatal prints the command's standard one-line error and exits 1.
func Fatal(name string, err error) {
	fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
	os.Exit(1)
}

// Profiler carries a command's -cpuprofile/-memprofile state. os.Exit skips
// defers - an unstopped CPU profile is truncated and unreadable - so every
// successful exit path must funnel through Exit instead of calling os.Exit
// directly. The zero value (no profiles requested) makes Exit plain
// os.Exit.
type Profiler struct {
	name    string
	cpuOn   bool
	memPath string
}

// StartProfiles begins CPU profiling when cpuPath is non-empty and returns
// a Profiler whose Exit finishes both profiles before terminating. Call it
// once, right after flag parsing; a setup failure is fatal (a silently
// dropped profile wastes the run it was meant to measure).
func StartProfiles(name, cpuPath, memPath string) *Profiler {
	p := &Profiler{name: name, memPath: memPath}
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			Fatal(name, err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			Fatal(name, err)
		}
		p.cpuOn = true
	}
	return p
}

// Exit stops the CPU profile, writes the heap profile when one was
// requested, and exits with code.
func (p *Profiler) Exit(code int) {
	if p.cpuOn {
		pprof.StopCPUProfile()
	}
	if p.memPath != "" {
		f, err := os.Create(p.memPath)
		if err != nil {
			Fatal(p.name, err)
		}
		runtime.GC() // settle allocations so the heap profile reflects live data
		if err := pprof.WriteHeapProfile(f); err != nil {
			Fatal(p.name, err)
		}
		if err := f.Close(); err != nil {
			Fatal(p.name, err)
		}
	}
	os.Exit(code)
}
