// Package cli carries the conventions shared by every vrldram command:
// signal-aware contexts and the common exit paths, so each binary wires
// SIGINT/SIGTERM the same way instead of growing its own variant.
package cli

import (
	"context"
	"fmt"
	"os"
	"os/signal"
	"syscall"
)

// StatusInterrupted is the conventional exit status for a run ended by a
// signal or deadline (vrlsim established it; every command follows).
const StatusInterrupted = 3

// SignalContext derives a context that is cancelled on SIGINT or SIGTERM.
// The returned stop function restores default signal delivery, so a second
// signal kills the process the usual way.
func SignalContext(parent context.Context) (context.Context, context.CancelFunc) {
	return signal.NotifyContext(parent, os.Interrupt, syscall.SIGTERM)
}

// ExitOnSignal lets a command whose inner loops are not context-aware still
// honor SignalContext: when ctx dies, one line goes to stderr and the
// process exits with StatusInterrupted. The caller must NOT cancel ctx on
// its normal completion path (normal process exit simply abandons the
// watcher); cancel only to mean "stop now".
func ExitOnSignal(ctx context.Context, name string) {
	go func() {
		<-ctx.Done()
		fmt.Fprintf(os.Stderr, "%s: interrupted\n", name)
		os.Exit(StatusInterrupted)
	}()
}

// InterruptExit is the whole signal story for a command with no
// context-aware inner loops: SignalContext plus ExitOnSignal, with the stop
// function deliberately discarded so normal completion can never race the
// watcher into a spurious interrupted exit.
func InterruptExit(name string) {
	ctx, _ := SignalContext(context.Background())
	ExitOnSignal(ctx, name)
}

// Fatal prints the command's standard one-line error and exits 1.
func Fatal(name string, err error) {
	fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
	os.Exit(1)
}
