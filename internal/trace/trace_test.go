package trace

import (
	"bytes"
	"io"
	"strings"
	"testing"
	"testing/quick"
)

func TestRecordValidate(t *testing.T) {
	good := Record{Time: 1, Op: Read, Row: 3}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Record{
		{Time: -1, Op: Read, Row: 0},
		{Time: 0, Op: 'X', Row: 0},
		{Time: 0, Op: Write, Row: -1},
	}
	for i, r := range bad {
		if err := r.Validate(); err == nil {
			t.Errorf("bad record %d not caught", i)
		}
	}
}

func TestWriterReaderRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Comment("hello")
	in := []Record{
		{Time: 0.001, Op: Read, Row: 7},
		{Time: 0.002, Op: Write, Row: 8191},
		{Time: 0.002, Op: Read, Row: 0},
	}
	for _, r := range in {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != len(in) {
		t.Fatalf("count %d, want %d", w.Count(), len(in))
	}
	out, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("read %d records, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i].Op != in[i].Op || out[i].Row != in[i].Row {
			t.Fatalf("record %d mismatch: %+v vs %+v", i, out[i], in[i])
		}
	}
}

func TestWriterRejectsBadRecord(t *testing.T) {
	w := NewWriter(io.Discard)
	if err := w.Write(Record{Time: -1, Op: Read}); err == nil {
		t.Fatal("bad record must be rejected")
	}
	// The writer stays failed.
	if err := w.Write(Record{Time: 0, Op: Read}); err == nil {
		t.Fatal("writer must stick to its first error")
	}
	if err := w.Flush(); err == nil {
		t.Fatal("flush must report the error")
	}
}

func TestReaderParseErrors(t *testing.T) {
	cases := []string{
		"0.1 R",            // missing field
		"x R 1",            // bad time
		"0.1 RW 1",         // bad op length
		"0.1 R x",          // bad row
		"0.1 Z 1",          // unknown op
		"0.2 R 1\n0.1 R 1", // time goes backwards
		"0.1 R -5",         // negative row
	}
	for _, c := range cases {
		if _, err := ReadAll(strings.NewReader(c)); err == nil {
			t.Errorf("input %q not rejected", c)
		}
	}
}

func TestReaderSkipsCommentsAndBlanks(t *testing.T) {
	in := "# header\n\n0.1 R 1\n   \n# mid\n0.2 W 2\n"
	recs, err := ReadAll(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records", len(recs))
	}
}

func TestSliceSource(t *testing.T) {
	src := NewSliceSource([]Record{{Time: 1, Op: Read, Row: 2}})
	r, err := src.Next()
	if err != nil || r.Row != 2 {
		t.Fatalf("%+v, %v", r, err)
	}
	if _, err := src.Next(); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
	if _, err := (Empty{}).Next(); err != io.EOF {
		t.Fatal("Empty must EOF")
	}
}

func TestPARSECSpecsValid(t *testing.T) {
	specs := PARSEC()
	if len(specs) != 14 {
		t.Fatalf("want 13 PARSEC benchmarks + bgsave, got %d", len(specs))
	}
	names := map[string]bool{}
	for _, b := range specs {
		if err := b.Validate(); err != nil {
			t.Errorf("%s: %v", b.Name, err)
		}
		if names[b.Name] {
			t.Errorf("duplicate benchmark %s", b.Name)
		}
		names[b.Name] = true
	}
	for _, must := range []string{"blackscholes", "streamcluster", "swaptions", "bgsave", "x264"} {
		if !names[must] {
			t.Errorf("missing benchmark %s", must)
		}
	}
}

func TestFindBenchmark(t *testing.T) {
	b, err := FindBenchmark("canneal")
	if err != nil || b.Name != "canneal" {
		t.Fatalf("%+v, %v", b, err)
	}
	if _, err := FindBenchmark("nope"); err == nil {
		t.Fatal("unknown benchmark must error")
	}
}

func TestSpecValidation(t *testing.T) {
	base := BenchmarkSpec{Name: "x", FootprintFrac: 0.5, SweepFrac: 0.5,
		HotRows: 10, HotAccessesPerWindow: 10, ZipfS: 1, WriteFrac: 0.1}
	if err := base.Validate(); err != nil {
		t.Fatal(err)
	}
	muts := []func(*BenchmarkSpec){
		func(b *BenchmarkSpec) { b.Name = "" },
		func(b *BenchmarkSpec) { b.FootprintFrac = 0 },
		func(b *BenchmarkSpec) { b.FootprintFrac = 1.5 },
		func(b *BenchmarkSpec) { b.SweepFrac = -0.1 },
		func(b *BenchmarkSpec) { b.HotRows = -1 },
		func(b *BenchmarkSpec) { b.HotAccessesPerWindow = -1 },
		func(b *BenchmarkSpec) { b.ZipfS = 0 },
		func(b *BenchmarkSpec) { b.WriteFrac = 2 },
	}
	for i, mut := range muts {
		b := base
		mut(&b)
		if err := b.Validate(); err == nil {
			t.Errorf("mutation %d not caught", i)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	spec, err := FindBenchmark("dedup")
	if err != nil {
		t.Fatal(err)
	}
	a, err := spec.Generate(1024, 0.128, 9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := spec.Generate(1024, 0.128, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatal("nondeterministic length")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("nondeterministic records")
		}
	}
	c, err := spec.Generate(1024, 0.128, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(c) == len(a) {
		same := true
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical traces")
		}
	}
}

func TestGenerateWellFormed(t *testing.T) {
	f := func(seed int64) bool {
		spec, err := FindBenchmark("ferret")
		if err != nil {
			return false
		}
		const rows, dur = 512, 0.1
		recs, err := spec.Generate(rows, dur, seed)
		if err != nil {
			return false
		}
		last := -1.0
		for _, r := range recs {
			if r.Validate() != nil || r.Time < last || r.Time >= dur || r.Row >= rows {
				return false
			}
			last = r.Time
		}
		return len(recs) > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateErrors(t *testing.T) {
	spec, _ := FindBenchmark("vips")
	if _, err := spec.Generate(0, 0.1, 1); err == nil {
		t.Fatal("zero rows must be rejected")
	}
	if _, err := spec.Generate(10, 0, 1); err == nil {
		t.Fatal("zero duration must be rejected")
	}
	bad := spec
	bad.ZipfS = 0
	if _, err := bad.Generate(10, 0.1, 1); err == nil {
		t.Fatal("invalid spec must be rejected")
	}
}

func TestCoverageOrdering(t *testing.T) {
	// Memory-resident workloads must cover far more rows per window than
	// compute-bound ones - the property Figure 4's VRL-Access spread needs.
	const rows, dur = 8192, 0.256
	cov := func(name string) float64 {
		spec, err := FindBenchmark(name)
		if err != nil {
			t.Fatal(err)
		}
		recs, err := spec.Generate(rows, dur, 5)
		if err != nil {
			t.Fatal(err)
		}
		return Analyze(recs, rows, dur).MeanCoverage
	}
	heavy := cov("streamcluster")
	light := cov("swaptions")
	if heavy < 2*light {
		t.Fatalf("streamcluster coverage %v should dwarf swaptions %v", heavy, light)
	}
	if heavy < 0.5 {
		t.Fatalf("streamcluster coverage %v too low", heavy)
	}
}

func TestAnalyze(t *testing.T) {
	recs := []Record{
		{Time: 0.01, Op: Read, Row: 1},
		{Time: 0.02, Op: Write, Row: 1},
		{Time: 0.07, Op: Read, Row: 2},
	}
	st := Analyze(recs, 4, 0.128)
	if st.Records != 3 || st.Reads != 2 || st.Writes != 1 {
		t.Fatalf("%+v", st)
	}
	if st.UniqueRows != 2 {
		t.Fatalf("unique = %d", st.UniqueRows)
	}
	// Window 1 touches 1/4 rows, window 2 touches 1/4.
	if st.MeanCoverage != 0.25 {
		t.Fatalf("coverage = %v", st.MeanCoverage)
	}
	empty := Analyze(nil, 4, 0)
	if empty.Records != 0 {
		t.Fatal("empty analyze broken")
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	bw := NewBinaryWriter(&buf)
	in := []Record{
		{Time: 0.001, Op: Read, Row: 7},
		{Time: 0.002, Op: Write, Row: 8191},
		{Time: 0.002, Op: Read, Row: 0},
	}
	for _, r := range in {
		if err := bw.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	if bw.Count() != len(in) {
		t.Fatalf("count = %d", bw.Count())
	}
	// 5-byte header + 13 bytes per record.
	if want := 5 + 13*len(in); buf.Len() != want {
		t.Fatalf("encoded %d bytes, want %d", buf.Len(), want)
	}
	br := NewBinaryReader(&buf)
	for i, want := range in {
		got, err := br.Next()
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("record %d: %+v != %+v", i, got, want)
		}
	}
	if _, err := br.Next(); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
}

func TestBinaryEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	bw := NewBinaryWriter(&buf)
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	br := NewBinaryReader(&buf)
	if _, err := br.Next(); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
}

func TestBinaryReaderErrors(t *testing.T) {
	// Bad magic.
	if _, err := NewBinaryReader(strings.NewReader("XXXX\x01")).Next(); err == nil {
		t.Fatal("bad magic must be rejected")
	}
	// Bad version.
	if _, err := NewBinaryReader(strings.NewReader("VRLT\x09")).Next(); err == nil {
		t.Fatal("bad version must be rejected")
	}
	// Truncated header.
	if _, err := NewBinaryReader(strings.NewReader("VR")).Next(); err == nil {
		t.Fatal("truncated header must be rejected")
	}
	// Truncated record.
	var buf bytes.Buffer
	bw := NewBinaryWriter(&buf)
	if err := bw.Write(Record{Time: 1, Op: Read, Row: 2}); err != nil {
		t.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-3]
	if _, err := NewBinaryReader(bytes.NewReader(trunc)).Next(); err == nil {
		t.Fatal("truncated record must be rejected")
	}
	// Time going backwards.
	buf.Reset()
	bw = NewBinaryWriter(&buf)
	_ = bw.Write(Record{Time: 2, Op: Read, Row: 1})
	_ = bw.Flush()
	raw := append([]byte{}, buf.Bytes()...)
	// Append a second record with an earlier time by hand.
	var second bytes.Buffer
	bw2 := NewBinaryWriter(&second)
	_ = bw2.Write(Record{Time: 1, Op: Read, Row: 1})
	_ = bw2.Flush()
	full := append(raw, second.Bytes()[5:]...)
	br := NewBinaryReader(bytes.NewReader(full))
	if _, err := br.Next(); err != nil {
		t.Fatal(err)
	}
	if _, err := br.Next(); err == nil {
		t.Fatal("backwards time must be rejected")
	}
}

func TestBinaryWriterRejectsBadRecord(t *testing.T) {
	bw := NewBinaryWriter(io.Discard)
	if err := bw.Write(Record{Time: -1, Op: Read}); err == nil {
		t.Fatal("bad record must be rejected")
	}
	if err := bw.Flush(); err == nil {
		t.Fatal("writer must stick to its error")
	}
}

func TestBinaryIsSmallerThanText(t *testing.T) {
	spec, err := FindBenchmark("dedup")
	if err != nil {
		t.Fatal(err)
	}
	recs, err := spec.Generate(2048, 0.128, 1)
	if err != nil {
		t.Fatal(err)
	}
	var text, bin bytes.Buffer
	tw := NewWriter(&text)
	bw := NewBinaryWriter(&bin)
	for _, r := range recs {
		if err := tw.Write(r); err != nil {
			t.Fatal(err)
		}
		if err := bw.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	_ = tw.Flush()
	_ = bw.Flush()
	if bin.Len() >= text.Len() {
		t.Fatalf("binary (%d B) not smaller than text (%d B)", bin.Len(), text.Len())
	}
}

func TestOpenSourceAutodetect(t *testing.T) {
	recs := []Record{
		{Time: 0.001, Op: Read, Row: 3},
		{Time: 0.002, Op: Write, Row: 4},
	}
	drain := func(src Source) []Record {
		var out []Record
		for {
			r, err := src.Next()
			if err == io.EOF {
				return out
			}
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, r)
		}
	}

	// Plain text.
	var text bytes.Buffer
	tw := NewWriter(&text)
	for _, r := range recs {
		if err := tw.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	_ = tw.Flush()
	src, err := OpenSource(bytes.NewReader(text.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got := drain(src); len(got) != 2 || got[1].Row != 4 {
		t.Fatalf("text autodetect: %+v", got)
	}

	// Plain binary.
	var bin bytes.Buffer
	bw := NewBinaryWriter(&bin)
	for _, r := range recs {
		if err := bw.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	_ = bw.Flush()
	src, err = OpenSource(bytes.NewReader(bin.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got := drain(src); len(got) != 2 || got[0].Row != 3 {
		t.Fatalf("binary autodetect: %+v", got)
	}

	// Gzip-compressed binary.
	var gz bytes.Buffer
	cw := NewCompressedWriter(&gz)
	for _, r := range recs {
		if err := cw.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := cw.Close(); err != nil {
		t.Fatal(err)
	}
	src, err = OpenSource(bytes.NewReader(gz.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got := drain(src); len(got) != 2 || got[1].Op != Write {
		t.Fatalf("gzip autodetect: %+v", got)
	}

	// Truncated gzip header is rejected.
	if _, err := OpenSource(bytes.NewReader([]byte{0x1f, 0x8b, 0x00})); err == nil {
		t.Fatal("corrupt gzip must be rejected")
	}

	// Empty input: a source that immediately EOFs.
	src, err = OpenSource(bytes.NewReader(nil))
	if err != nil {
		t.Fatal(err)
	}
	if got := drain(src); len(got) != 0 {
		t.Fatal("empty input should yield nothing")
	}
}

func TestCompressedSmallerForLargeTraces(t *testing.T) {
	spec, err := FindBenchmark("canneal")
	if err != nil {
		t.Fatal(err)
	}
	recs, err := spec.Generate(4096, 0.128, 2)
	if err != nil {
		t.Fatal(err)
	}
	var raw, gz bytes.Buffer
	bw := NewBinaryWriter(&raw)
	cw := NewCompressedWriter(&gz)
	for _, r := range recs {
		_ = bw.Write(r)
		_ = cw.Write(r)
	}
	_ = bw.Flush()
	if err := cw.Close(); err != nil {
		t.Fatal(err)
	}
	if gz.Len() >= raw.Len() {
		t.Fatalf("gzip (%d B) not smaller than raw binary (%d B)", gz.Len(), raw.Len())
	}
}
