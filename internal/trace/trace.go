// Package trace provides the memory-trace substrate of the paper's
// evaluation (Section 4.1): a Ramulator-style text trace format with reader
// and writer, plus deterministic synthetic generators standing in for the
// PARSEC-3.0 and bgsave traces the paper feeds its simulator.
//
// Substitution note (see DESIGN.md): the paper generates its traces by
// running PARSEC under Ramulator. The property Figure 4 actually exercises
// is per-benchmark ROW COVERAGE - which rows get activated at least once per
// refresh window - because VRL-Access resets a row's partial-refresh counter
// on activation. The generators here are therefore parameterized by each
// benchmark's footprint, access intensity and locality skew, calibrated to
// span the realistic range from compute-bound (swaptions) to
// streaming/memory-resident (streamcluster, bgsave).
package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// OpKind distinguishes reads from writes.
type OpKind byte

// Trace operation kinds.
const (
	Read  OpKind = 'R'
	Write OpKind = 'W'
)

// Record is one memory access: the DRAM row it activates and the time it
// occurs, in seconds from the start of the trace. Traces are row-granular
// because refresh scheduling is row-granular; column/byte addressing adds
// nothing to the experiments.
type Record struct {
	Time float64 // seconds
	Op   OpKind
	Row  int
}

// Validate reports the first malformed field.
func (r Record) Validate() error {
	if r.Time < 0 {
		return fmt.Errorf("trace: negative time %g", r.Time)
	}
	if r.Op != Read && r.Op != Write {
		return fmt.Errorf("trace: bad op %q", r.Op)
	}
	if r.Row < 0 {
		return fmt.Errorf("trace: negative row %d", r.Row)
	}
	return nil
}

// Writer emits records in the text format:
//
//	<time_seconds> <R|W> <row>
//
// one per line, with '#' comment lines allowed.
type Writer struct {
	w   *bufio.Writer
	n   int
	err error
}

// NewWriter wraps an io.Writer.
func NewWriter(w io.Writer) *Writer { return &Writer{w: bufio.NewWriter(w)} }

// Comment writes a '#' comment line.
func (tw *Writer) Comment(text string) {
	if tw.err != nil {
		return
	}
	_, tw.err = fmt.Fprintf(tw.w, "# %s\n", text)
}

// Write appends one record.
func (tw *Writer) Write(r Record) error {
	if tw.err != nil {
		return tw.err
	}
	if err := r.Validate(); err != nil {
		tw.err = err
		return err
	}
	_, tw.err = fmt.Fprintf(tw.w, "%.9f %c %d\n", r.Time, r.Op, r.Row)
	if tw.err == nil {
		tw.n++
	}
	return tw.err
}

// Flush flushes buffered output and returns the first error seen.
func (tw *Writer) Flush() error {
	if tw.err != nil {
		return tw.err
	}
	return tw.w.Flush()
}

// Count returns the number of records written.
func (tw *Writer) Count() int { return tw.n }

// Reader parses the text format. Records must be in non-decreasing time
// order; Reader enforces it because the simulator merges traces with refresh
// events by time.
type Reader struct {
	s        *bufio.Scanner
	line     int
	lastTime float64
}

// NewReader wraps an io.Reader.
func NewReader(r io.Reader) *Reader {
	s := bufio.NewScanner(r)
	s.Buffer(make([]byte, 64*1024), 1<<20)
	return &Reader{s: s}
}

// Next returns the next record, io.EOF at end of input, or a parse error.
func (tr *Reader) Next() (Record, error) {
	for tr.s.Scan() {
		tr.line++
		text := strings.TrimSpace(tr.s.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 3 {
			return Record{}, fmt.Errorf("trace: line %d: want 3 fields, got %d", tr.line, len(fields))
		}
		t, err := strconv.ParseFloat(fields[0], 64)
		if err != nil {
			return Record{}, fmt.Errorf("trace: line %d: bad time: %v", tr.line, err)
		}
		if len(fields[1]) != 1 {
			return Record{}, fmt.Errorf("trace: line %d: bad op %q", tr.line, fields[1])
		}
		row, err := strconv.Atoi(fields[2])
		if err != nil {
			return Record{}, fmt.Errorf("trace: line %d: bad row: %v", tr.line, err)
		}
		rec := Record{Time: t, Op: OpKind(fields[1][0]), Row: row}
		if err := rec.Validate(); err != nil {
			return Record{}, fmt.Errorf("trace: line %d: %v", tr.line, err)
		}
		if rec.Time < tr.lastTime {
			return Record{}, fmt.Errorf("trace: line %d: time went backwards (%.9f < %.9f)", tr.line, rec.Time, tr.lastTime)
		}
		tr.lastTime = rec.Time
		return rec, nil
	}
	if err := tr.s.Err(); err != nil {
		return Record{}, err
	}
	return Record{}, io.EOF
}

// ReadAll drains the reader into a slice.
func ReadAll(r io.Reader) ([]Record, error) {
	tr := NewReader(r)
	var out []Record
	for {
		rec, err := tr.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, rec)
	}
}

// Source streams records in time order; the simulator consumes this
// interface so traces can come from files, generators, or slices.
type Source interface {
	// Next returns the next record or io.EOF.
	Next() (Record, error)
}

// SliceSource adapts an in-memory record slice to Source.
type SliceSource struct {
	recs []Record
	i    int
}

// NewSliceSource wraps records (which must already be time-ordered).
func NewSliceSource(recs []Record) *SliceSource { return &SliceSource{recs: recs} }

// Next implements Source.
func (s *SliceSource) Next() (Record, error) {
	if s.i >= len(s.recs) {
		return Record{}, io.EOF
	}
	r := s.recs[s.i]
	s.i++
	return r, nil
}

// Empty is a Source with no records (refresh-only simulation).
type Empty struct{}

// Next implements Source.
func (Empty) Next() (Record, error) { return Record{}, io.EOF }
