package trace

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// BenchmarkSpec parameterizes a synthetic workload generator. The parameters
// are chosen per benchmark to match the qualitative memory behaviour the
// PARSEC characterization literature reports (Bienia et al., PACT 2008):
// footprint relative to one DRAM bank, access intensity, and the split
// between a skewed hot set and streaming sweeps.
type BenchmarkSpec struct {
	Name string

	// FootprintFrac is the fraction of the bank's rows the workload ever
	// touches.
	FootprintFrac float64
	// SweepFrac is the fraction of the footprint touched by the streaming
	// component in each 64 ms window (it advances round-robin, so over time
	// the whole footprint is swept).
	SweepFrac float64
	// HotRows is the size of the hot set receiving the Zipf-skewed random
	// component.
	HotRows int
	// HotAccessesPerWindow is the number of skewed random accesses per 64 ms
	// window.
	HotAccessesPerWindow int
	// ZipfS is the Zipf skew of the hot component (1.0 = classic).
	ZipfS float64
	// WriteFrac is the fraction of accesses that are writes.
	WriteFrac float64
}

// Validate reports the first unusable parameter.
func (b BenchmarkSpec) Validate() error {
	switch {
	case b.Name == "":
		return fmt.Errorf("trace: benchmark needs a name")
	case b.FootprintFrac <= 0 || b.FootprintFrac > 1:
		return fmt.Errorf("trace: %s: FootprintFrac %g outside (0,1]", b.Name, b.FootprintFrac)
	case b.SweepFrac < 0 || b.SweepFrac > 1:
		return fmt.Errorf("trace: %s: SweepFrac %g outside [0,1]", b.Name, b.SweepFrac)
	case b.HotRows < 0:
		return fmt.Errorf("trace: %s: HotRows %d negative", b.Name, b.HotRows)
	case b.HotAccessesPerWindow < 0:
		return fmt.Errorf("trace: %s: HotAccessesPerWindow %d negative", b.Name, b.HotAccessesPerWindow)
	case b.ZipfS <= 0:
		return fmt.Errorf("trace: %s: ZipfS %g must be positive", b.Name, b.ZipfS)
	case b.WriteFrac < 0 || b.WriteFrac > 1:
		return fmt.Errorf("trace: %s: WriteFrac %g outside [0,1]", b.Name, b.WriteFrac)
	}
	return nil
}

// PARSEC returns the evaluation workload set: the 13 PARSEC-3.0 benchmarks
// plus the bgsave server workload, matching the x-axis of the paper's
// Figure 4. Parameters follow the PARSEC characterization: streamcluster,
// canneal and dedup are memory-intensive with large footprints; swaptions
// and blackscholes are compute-bound with small working sets; bgsave (a
// Redis background save) linearly scans nearly the whole resident set.
func PARSEC() []BenchmarkSpec {
	mk := func(name string, fp, sweep float64, hot int, hits int, zipf, wf float64) BenchmarkSpec {
		return BenchmarkSpec{
			Name: name, FootprintFrac: fp, SweepFrac: sweep,
			HotRows: hot, HotAccessesPerWindow: hits, ZipfS: zipf, WriteFrac: wf,
		}
	}
	return []BenchmarkSpec{
		mk("blackscholes", 0.45, 0.55, 256, 1500, 1.1, 0.25),
		mk("bodytrack", 0.55, 0.60, 512, 2500, 1.0, 0.30),
		mk("canneal", 0.95, 0.75, 2048, 6000, 0.9, 0.20),
		mk("dedup", 0.85, 0.80, 1024, 5000, 1.0, 0.45),
		mk("facesim", 0.70, 0.65, 768, 3500, 1.0, 0.35),
		mk("ferret", 0.65, 0.60, 768, 3000, 1.0, 0.25),
		mk("fluidanimate", 0.75, 0.70, 1024, 4000, 1.0, 0.40),
		mk("freqmine", 0.55, 0.50, 512, 2500, 1.1, 0.20),
		mk("raytrace", 0.50, 0.40, 512, 2000, 1.2, 0.10),
		mk("streamcluster", 0.98, 0.92, 1024, 8000, 0.8, 0.15),
		mk("swaptions", 0.12, 0.30, 128, 800, 1.3, 0.30),
		mk("vips", 0.65, 0.60, 768, 3000, 1.0, 0.35),
		mk("x264", 0.70, 0.65, 1024, 3500, 1.0, 0.40),
		mk("bgsave", 0.99, 0.96, 512, 9000, 0.7, 0.05),
	}
}

// FindBenchmark returns the spec with the given name.
func FindBenchmark(name string) (BenchmarkSpec, error) {
	for _, b := range PARSEC() {
		if b.Name == name {
			return b, nil
		}
	}
	return BenchmarkSpec{}, fmt.Errorf("trace: unknown benchmark %q", name)
}

// Generate produces the benchmark's access records over [0, duration) for a
// bank with the given number of rows, deterministically for a seed. Records
// come out time-sorted.
func (b BenchmarkSpec) Generate(rows int, duration float64, seed int64) ([]Record, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	if rows <= 0 || duration <= 0 {
		return nil, fmt.Errorf("trace: rows %d and duration %g must be positive", rows, duration)
	}
	rng := rand.New(rand.NewSource(seed))
	const window = 0.064 // the nominal refresh period paces program phases

	footprint := int(math.Round(b.FootprintFrac * float64(rows)))
	if footprint < 1 {
		footprint = 1
	}
	hot := b.HotRows
	if hot > footprint {
		hot = footprint
	}
	// The footprint occupies a contiguous region at a random offset; the hot
	// set is a random subset of it. Real row allocation is scattered, but
	// refresh scheduling is insensitive to which rows are hot - only to how
	// many and how often.
	base := 0
	if rows > footprint {
		base = rng.Intn(rows - footprint)
	}
	hotSet := rng.Perm(footprint)[:hot]

	var zipf *rand.Zipf
	if hot > 0 && b.HotAccessesPerWindow > 0 {
		// rand.Zipf requires s > 1; clamp and fold milder skews into v.
		s := b.ZipfS
		v := 1.0
		if s <= 1 {
			v = 2 + (1-s)*8 // flatter distributions via larger v
			s = 1.01
		}
		zipf = rand.NewZipf(rng, s, v, uint64(hot-1))
	}

	sweepPerWindow := int(math.Round(b.SweepFrac * float64(footprint)))
	nWindows := int(math.Ceil(duration / window))
	var recs []Record
	sweepPos := 0
	for w := 0; w < nWindows; w++ {
		t0 := float64(w) * window
		// Streaming component: the next sweepPerWindow rows of the
		// footprint, round-robin.
		for k := 0; k < sweepPerWindow; k++ {
			row := base + sweepPos
			sweepPos = (sweepPos + 1) % footprint
			t := t0 + window*float64(k)/float64(sweepPerWindow+1)
			recs = append(recs, Record{Time: t, Op: b.op(rng), Row: row})
		}
		// Skewed hot component.
		for k := 0; k < b.HotAccessesPerWindow && zipf != nil; k++ {
			row := base + hotSet[int(zipf.Uint64())]
			t := t0 + window*rng.Float64()
			recs = append(recs, Record{Time: t, Op: b.op(rng), Row: row})
		}
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].Time < recs[j].Time })
	// Clamp to the duration (the last window may overrun).
	cut := sort.Search(len(recs), func(i int) bool { return recs[i].Time >= duration })
	return recs[:cut], nil
}

func (b BenchmarkSpec) op(rng *rand.Rand) OpKind {
	if rng.Float64() < b.WriteFrac {
		return Write
	}
	return Read
}

// Stats summarizes a trace against a bank: the inputs Figure 4's VRL-Access
// result depends on.
type Stats struct {
	Records      int
	Reads        int
	Writes       int
	UniqueRows   int
	MeanCoverage float64 // mean fraction of bank rows touched per 64 ms window
}

// Analyze computes trace statistics for a bank of the given rows over the
// given duration.
func Analyze(recs []Record, rows int, duration float64) Stats {
	const window = 0.064
	st := Stats{Records: len(recs)}
	seen := make(map[int]struct{})
	nWindows := int(math.Ceil(duration / window))
	if nWindows == 0 {
		nWindows = 1
	}
	perWindow := make([]map[int]struct{}, nWindows)
	for i := range perWindow {
		perWindow[i] = make(map[int]struct{})
	}
	for _, r := range recs {
		if r.Op == Write {
			st.Writes++
		} else {
			st.Reads++
		}
		seen[r.Row] = struct{}{}
		w := int(r.Time / window)
		if w >= nWindows {
			w = nWindows - 1
		}
		perWindow[w][r.Row] = struct{}{}
	}
	st.UniqueRows = len(seen)
	var cov float64
	for _, m := range perWindow {
		cov += float64(len(m)) / float64(rows)
	}
	st.MeanCoverage = cov / float64(nWindows)
	return st
}
