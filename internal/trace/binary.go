package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Binary trace format: a compact fixed-record encoding for large traces
// (the text format costs ~25 bytes/record; this one costs 13). Layout:
//
//	magic   [4]byte  "VRLT"
//	version uint8    1
//	records:
//	  time  float64 (seconds, little-endian)
//	  op    uint8   ('R' or 'W')
//	  row   uint32
//
// Records must be written in non-decreasing time order; the reader enforces
// it, like the text reader.

var binMagic = [4]byte{'V', 'R', 'L', 'T'}

const binVersion = 1

// BinaryWriter emits the binary format.
type BinaryWriter struct {
	w      *bufio.Writer
	n      int
	opened bool
	err    error
}

// NewBinaryWriter wraps an io.Writer.
func NewBinaryWriter(w io.Writer) *BinaryWriter {
	return &BinaryWriter{w: bufio.NewWriter(w)}
}

func (bw *BinaryWriter) header() {
	if bw.opened || bw.err != nil {
		return
	}
	bw.opened = true
	if _, err := bw.w.Write(binMagic[:]); err != nil {
		bw.err = err
		return
	}
	bw.err = bw.w.WriteByte(binVersion)
}

// Write appends one record.
func (bw *BinaryWriter) Write(r Record) error {
	if bw.err != nil {
		return bw.err
	}
	if err := r.Validate(); err != nil {
		bw.err = err
		return err
	}
	bw.header()
	if bw.err != nil {
		return bw.err
	}
	var buf [13]byte
	binary.LittleEndian.PutUint64(buf[0:8], mathFloat64bits(r.Time))
	buf[8] = byte(r.Op)
	binary.LittleEndian.PutUint32(buf[9:13], uint32(r.Row))
	if _, err := bw.w.Write(buf[:]); err != nil {
		bw.err = err
		return err
	}
	bw.n++
	return nil
}

// Flush flushes buffered output (writing the header even for empty traces).
func (bw *BinaryWriter) Flush() error {
	if bw.err != nil {
		return bw.err
	}
	bw.header()
	if bw.err != nil {
		return bw.err
	}
	return bw.w.Flush()
}

// Count returns the number of records written.
func (bw *BinaryWriter) Count() int { return bw.n }

// BinaryReader parses the binary format; it implements Source.
type BinaryReader struct {
	r        *bufio.Reader
	started  bool
	lastTime float64
}

// NewBinaryReader wraps an io.Reader.
func NewBinaryReader(r io.Reader) *BinaryReader {
	return &BinaryReader{r: bufio.NewReader(r)}
}

// Next implements Source.
func (br *BinaryReader) Next() (Record, error) {
	if !br.started {
		var hdr [5]byte
		if _, err := io.ReadFull(br.r, hdr[:]); err != nil {
			if err == io.ErrUnexpectedEOF {
				return Record{}, fmt.Errorf("trace: truncated binary header: %w", err)
			}
			return Record{}, err
		}
		if [4]byte{hdr[0], hdr[1], hdr[2], hdr[3]} != binMagic {
			return Record{}, fmt.Errorf("trace: bad binary magic %q", hdr[:4])
		}
		if hdr[4] != binVersion {
			return Record{}, fmt.Errorf("trace: unsupported binary version %d", hdr[4])
		}
		br.started = true
	}
	var buf [13]byte
	if _, err := io.ReadFull(br.r, buf[:]); err != nil {
		if err == io.EOF {
			return Record{}, io.EOF
		}
		if err == io.ErrUnexpectedEOF {
			return Record{}, fmt.Errorf("trace: truncated binary record: %w", err)
		}
		return Record{}, err
	}
	rec := Record{
		Time: mathFloat64frombits(binary.LittleEndian.Uint64(buf[0:8])),
		Op:   OpKind(buf[8]),
		Row:  int(binary.LittleEndian.Uint32(buf[9:13])),
	}
	if err := rec.Validate(); err != nil {
		return Record{}, err
	}
	if rec.Time < br.lastTime {
		return Record{}, fmt.Errorf("trace: binary record time goes backwards (%.9f < %.9f)", rec.Time, br.lastTime)
	}
	br.lastTime = rec.Time
	return rec, nil
}

func mathFloat64bits(f float64) uint64     { return math.Float64bits(f) }
func mathFloat64frombits(b uint64) float64 { return math.Float64frombits(b) }
