package trace

import (
	"bytes"
	"compress/gzip"
	"errors"
	"fmt"
	"io"
	"strings"
	"testing"
)

// compressedTrace builds a gzip-compressed binary trace of n records.
func compressedTrace(t *testing.T, n int) []byte {
	t.Helper()
	var buf bytes.Buffer
	cw := NewCompressedWriter(&buf)
	for i := 0; i < n; i++ {
		if err := cw.Write(Record{Time: float64(i) * 1e-6, Op: Read, Row: i % 64}); err != nil {
			t.Fatal(err)
		}
	}
	if err := cw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// readAll drains a source, returning the records delivered and the
// terminal error (io.EOF for a clean end).
func readAll(src Source) (int, error) {
	n := 0
	for {
		_, err := src.Next()
		if err != nil {
			return n, err
		}
		n++
	}
}

func TestGzipTruncationReportsRecordIndex(t *testing.T) {
	const n = 200
	full := compressedTrace(t, n)

	// Sanity: the intact stream reads back cleanly.
	src, err := OpenSource(bytes.NewReader(full))
	if err != nil {
		t.Fatal(err)
	}
	if got, err := readAll(src); err != io.EOF || got != n {
		t.Fatalf("intact stream: %d records, err %v", got, err)
	}

	// Cut the compressed stream at several depths - mid-deflate-data and
	// just shy of the trailer - and require the decorated error everywhere.
	for _, cut := range []int{len(full) / 4, len(full) / 2, len(full) - 9, len(full) - 1} {
		t.Run(fmt.Sprintf("cut@%d", cut), func(t *testing.T) {
			src, err := OpenSource(bytes.NewReader(full[:cut]))
			if err != nil {
				// A cut inside the gzip header can fail at open; that error
				// is already explicit.
				if strings.Contains(err.Error(), "gzip") {
					return
				}
				t.Fatal(err)
			}
			got, err := readAll(src)
			if err == io.EOF {
				t.Fatalf("truncated stream (%d of %d bytes) read to clean EOF after %d records", cut, len(full), got)
			}
			if !strings.Contains(err.Error(), "gzip stream truncated at record") {
				t.Fatalf("err = %v, want the gzip truncation decoration", err)
			}
			if !strings.Contains(err.Error(), fmt.Sprintf("(%d records read cleanly)", got)) {
				t.Fatalf("err = %v, want the delivered-record count %d", err, got)
			}
		})
	}
}

func TestGzipCorruptPayloadReportsChecksum(t *testing.T) {
	full := compressedTrace(t, 100)
	// Flip a byte in the deflate payload (past the 10-byte gzip header,
	// before the 8-byte trailer).
	bad := append([]byte(nil), full...)
	bad[len(bad)/2] ^= 0x10
	src, err := OpenSource(bytes.NewReader(bad))
	if err != nil {
		return // corrupted early enough to fail at open; also acceptable
	}
	_, err = readAll(src)
	if err == nil || err == io.EOF {
		t.Fatalf("corrupt gzip payload read cleanly (err %v)", err)
	}
}

func TestGzipCleanEOFIsNotDecorated(t *testing.T) {
	// An EMPTY gzip stream is complete, just recordless: the reader must
	// report plain io.EOF, not a truncation.
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	src, err := OpenSource(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := src.Next(); err != io.EOF {
		t.Fatalf("empty gzip stream: err = %v, want io.EOF", err)
	}
}

func TestGzipTextTraceStillAutodetected(t *testing.T) {
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	fmt.Fprintln(zw, "# time op row")
	fmt.Fprintln(zw, "0.000001 R 3")
	fmt.Fprintln(zw, "0.000002 W 4")
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	src, err := OpenSource(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	n, err := readAll(src)
	if err != io.EOF || n != 2 {
		t.Fatalf("gzip text trace: %d records, err %v", n, err)
	}
}

// TestOpenSourceShortInputs covers the sniffing boundaries: inputs shorter
// than the two-byte gzip magic must fall through to the text reader without
// error at open, and the magic alone - a gzip stream with no header, let
// alone a deflate body - must fail at open with the decorated gzip error
// rather than panicking or hanging in the decompressor.
func TestOpenSourceShortInputs(t *testing.T) {
	t.Run("empty", func(t *testing.T) {
		src, err := OpenSource(bytes.NewReader(nil))
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		if n, err := readAll(src); err != io.EOF || n != 0 {
			t.Fatalf("empty input: %d records, err %v, want clean io.EOF", n, err)
		}
	})

	// One byte cannot be gzip (the magic is two), whatever the byte is -
	// including the first magic byte itself. It parses as text and fails
	// with the text reader's line diagnostic, not a gzip error.
	for _, in := range [][]byte{{gzipMagic[0]}, {'x'}} {
		t.Run(fmt.Sprintf("one-byte-0x%02x", in[0]), func(t *testing.T) {
			src, err := OpenSource(bytes.NewReader(in))
			if err != nil {
				t.Fatalf("open: %v", err)
			}
			_, err = readAll(src)
			if err == nil || err == io.EOF {
				t.Fatalf("a one-byte garbage line read cleanly (err %v)", err)
			}
			if !strings.Contains(err.Error(), "line 1") {
				t.Fatalf("want the text reader's line diagnostic, got %v", err)
			}
		})
	}

	t.Run("gzip-magic-only", func(t *testing.T) {
		_, err := OpenSource(bytes.NewReader(gzipMagic))
		if err == nil {
			t.Fatal("two magic bytes with no gzip header must fail at open")
		}
		if !strings.Contains(err.Error(), "bad gzip stream") {
			t.Fatalf("want the decorated gzip open error, got %v", err)
		}
		if !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("want io.ErrUnexpectedEOF underneath, got %v", err)
		}
	})
}
