package trace

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
	"strings"
	"testing"
)

// compressedTrace builds a gzip-compressed binary trace of n records.
func compressedTrace(t *testing.T, n int) []byte {
	t.Helper()
	var buf bytes.Buffer
	cw := NewCompressedWriter(&buf)
	for i := 0; i < n; i++ {
		if err := cw.Write(Record{Time: float64(i) * 1e-6, Op: Read, Row: i % 64}); err != nil {
			t.Fatal(err)
		}
	}
	if err := cw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// readAll drains a source, returning the records delivered and the
// terminal error (io.EOF for a clean end).
func readAll(src Source) (int, error) {
	n := 0
	for {
		_, err := src.Next()
		if err != nil {
			return n, err
		}
		n++
	}
}

func TestGzipTruncationReportsRecordIndex(t *testing.T) {
	const n = 200
	full := compressedTrace(t, n)

	// Sanity: the intact stream reads back cleanly.
	src, err := OpenSource(bytes.NewReader(full))
	if err != nil {
		t.Fatal(err)
	}
	if got, err := readAll(src); err != io.EOF || got != n {
		t.Fatalf("intact stream: %d records, err %v", got, err)
	}

	// Cut the compressed stream at several depths - mid-deflate-data and
	// just shy of the trailer - and require the decorated error everywhere.
	for _, cut := range []int{len(full) / 4, len(full) / 2, len(full) - 9, len(full) - 1} {
		t.Run(fmt.Sprintf("cut@%d", cut), func(t *testing.T) {
			src, err := OpenSource(bytes.NewReader(full[:cut]))
			if err != nil {
				// A cut inside the gzip header can fail at open; that error
				// is already explicit.
				if strings.Contains(err.Error(), "gzip") {
					return
				}
				t.Fatal(err)
			}
			got, err := readAll(src)
			if err == io.EOF {
				t.Fatalf("truncated stream (%d of %d bytes) read to clean EOF after %d records", cut, len(full), got)
			}
			if !strings.Contains(err.Error(), "gzip stream truncated at record") {
				t.Fatalf("err = %v, want the gzip truncation decoration", err)
			}
			if !strings.Contains(err.Error(), fmt.Sprintf("(%d records read cleanly)", got)) {
				t.Fatalf("err = %v, want the delivered-record count %d", err, got)
			}
		})
	}
}

func TestGzipCorruptPayloadReportsChecksum(t *testing.T) {
	full := compressedTrace(t, 100)
	// Flip a byte in the deflate payload (past the 10-byte gzip header,
	// before the 8-byte trailer).
	bad := append([]byte(nil), full...)
	bad[len(bad)/2] ^= 0x10
	src, err := OpenSource(bytes.NewReader(bad))
	if err != nil {
		return // corrupted early enough to fail at open; also acceptable
	}
	_, err = readAll(src)
	if err == nil || err == io.EOF {
		t.Fatalf("corrupt gzip payload read cleanly (err %v)", err)
	}
}

func TestGzipCleanEOFIsNotDecorated(t *testing.T) {
	// An EMPTY gzip stream is complete, just recordless: the reader must
	// report plain io.EOF, not a truncation.
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	src, err := OpenSource(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := src.Next(); err != io.EOF {
		t.Fatalf("empty gzip stream: err = %v, want io.EOF", err)
	}
}

func TestGzipTextTraceStillAutodetected(t *testing.T) {
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	fmt.Fprintln(zw, "# time op row")
	fmt.Fprintln(zw, "0.000001 R 3")
	fmt.Fprintln(zw, "0.000002 W 4")
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	src, err := OpenSource(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	n, err := readAll(src)
	if err != io.EOF || n != 2 {
		t.Fatalf("gzip text trace: %d records, err %v", n, err)
	}
}
