package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReader: arbitrary text must never panic the parser; every successfully
// parsed record must validate and be time-ordered.
func FuzzReader(f *testing.F) {
	f.Add("0.1 R 1\n0.2 W 2\n")
	f.Add("# comment\n\n0.0 R 0\n")
	f.Add("garbage")
	f.Add("0.1 R 1\n0.05 R 1\n")
	f.Fuzz(func(t *testing.T, input string) {
		recs, err := ReadAll(strings.NewReader(input))
		if err != nil {
			return
		}
		last := -1.0
		for _, r := range recs {
			if r.Validate() != nil {
				t.Fatalf("parsed invalid record %+v", r)
			}
			if r.Time < last {
				t.Fatal("parsed out-of-order records without error")
			}
			last = r.Time
		}
	})
}

// FuzzBinaryReader: arbitrary bytes must never panic; valid parses must
// yield valid records.
func FuzzBinaryReader(f *testing.F) {
	var buf bytes.Buffer
	bw := NewBinaryWriter(&buf)
	_ = bw.Write(Record{Time: 0.1, Op: Read, Row: 1})
	_ = bw.Write(Record{Time: 0.2, Op: Write, Row: 2})
	_ = bw.Flush()
	f.Add(buf.Bytes())
	f.Add([]byte("VRLT\x01"))
	f.Add([]byte("nope"))
	f.Fuzz(func(t *testing.T, input []byte) {
		br := NewBinaryReader(bytes.NewReader(input))
		for i := 0; i < 1000; i++ {
			r, err := br.Next()
			if err != nil {
				return
			}
			if r.Validate() != nil {
				t.Fatalf("binary reader produced invalid record %+v", r)
			}
		}
	})
}
