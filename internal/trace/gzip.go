package trace

import (
	"bufio"
	"compress/gzip"
	"fmt"
	"io"
)

// Format auto-detection and compression: traces in the wild arrive as plain
// text, the binary VRLT encoding, or either of those gzip-compressed.
// OpenSource sniffs the header and returns the right Source.

// gzip magic bytes.
var gzipMagic = []byte{0x1f, 0x8b}

// OpenSource wraps a reader with format auto-detection: gzip is unwrapped
// first, then the VRLT magic selects the binary reader, otherwise the text
// reader parses. The returned Source reads lazily; the caller keeps
// ownership of closing the underlying reader.
func OpenSource(r io.Reader) (Source, error) {
	br := bufio.NewReader(r)
	head, err := br.Peek(2)
	if err != nil && err != io.EOF {
		return nil, err
	}
	if len(head) == 2 && head[0] == gzipMagic[0] && head[1] == gzipMagic[1] {
		zr, err := gzip.NewReader(br)
		if err != nil {
			return nil, fmt.Errorf("trace: bad gzip stream: %w", err)
		}
		inner := bufio.NewReader(zr)
		return sniffUncompressed(inner)
	}
	return sniffUncompressed(br)
}

func sniffUncompressed(br *bufio.Reader) (Source, error) {
	head, err := br.Peek(4)
	if err != nil && err != io.EOF {
		return nil, err
	}
	if len(head) == 4 && [4]byte{head[0], head[1], head[2], head[3]} == binMagic {
		return NewBinaryReader(br), nil
	}
	return NewReader(br), nil
}

// CompressedWriter wraps a Writer-compatible sink in gzip; Close flushes
// both layers.
type CompressedWriter struct {
	*BinaryWriter
	zw *gzip.Writer
}

// NewCompressedWriter emits the binary format gzip-compressed.
func NewCompressedWriter(w io.Writer) *CompressedWriter {
	zw := gzip.NewWriter(w)
	return &CompressedWriter{BinaryWriter: NewBinaryWriter(zw), zw: zw}
}

// Close flushes the trace and the compressor.
func (cw *CompressedWriter) Close() error {
	if err := cw.BinaryWriter.Flush(); err != nil {
		return err
	}
	return cw.zw.Close()
}
