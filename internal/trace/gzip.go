package trace

import (
	"bufio"
	"compress/gzip"
	"errors"
	"fmt"
	"io"
)

// Format auto-detection and compression: traces in the wild arrive as plain
// text, the binary VRLT encoding, or either of those gzip-compressed.
// OpenSource sniffs the header and returns the right Source.

// gzip magic bytes.
var gzipMagic = []byte{0x1f, 0x8b}

// OpenSource wraps a reader with format auto-detection: gzip is unwrapped
// first, then the VRLT magic selects the binary reader, otherwise the text
// reader parses. The returned Source reads lazily; the caller keeps
// ownership of closing the underlying reader.
func OpenSource(r io.Reader) (Source, error) {
	br := bufio.NewReader(r)
	head, err := br.Peek(2)
	if err != nil && err != io.EOF {
		return nil, err
	}
	if len(head) == 2 && head[0] == gzipMagic[0] && head[1] == gzipMagic[1] {
		zr, err := gzip.NewReader(br)
		if err != nil {
			return nil, fmt.Errorf("trace: bad gzip stream: %w", err)
		}
		inner := bufio.NewReader(zr)
		src, err := sniffUncompressed(inner)
		if err != nil {
			return nil, err
		}
		return &gzipSource{inner: src}, nil
	}
	return sniffUncompressed(br)
}

// gzipSource decorates a Source decoded out of a gzip stream: a truncated
// download or interrupted copy surfaces from the decompressor as a bare
// io.ErrUnexpectedEOF (or checksum failure) deep inside a decode error, so
// the wrapper names the failure mode and the record index where the stream
// gave out instead of leaving a context-free parse error.
type gzipSource struct {
	inner Source
	n     int64 // records successfully delivered
}

// Next implements Source.
func (g *gzipSource) Next() (Record, error) {
	rec, err := g.inner.Next()
	if err == nil {
		g.n++
		return rec, nil
	}
	if err != io.EOF && (errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, gzip.ErrChecksum)) {
		return rec, fmt.Errorf("trace: gzip stream truncated at record %d (%d records read cleanly): %w", g.n+1, g.n, err)
	}
	return rec, err
}

func sniffUncompressed(br *bufio.Reader) (Source, error) {
	head, err := br.Peek(4)
	if err != nil && err != io.EOF {
		return nil, err
	}
	if len(head) == 4 && [4]byte{head[0], head[1], head[2], head[3]} == binMagic {
		return NewBinaryReader(br), nil
	}
	return NewReader(br), nil
}

// CompressedWriter wraps a Writer-compatible sink in gzip; Close flushes
// both layers.
type CompressedWriter struct {
	*BinaryWriter
	zw *gzip.Writer
}

// NewCompressedWriter emits the binary format gzip-compressed.
func NewCompressedWriter(w io.Writer) *CompressedWriter {
	zw := gzip.NewWriter(w)
	return &CompressedWriter{BinaryWriter: NewBinaryWriter(zw), zw: zw}
}

// Close flushes the trace and the compressor.
func (cw *CompressedWriter) Close() error {
	if err := cw.BinaryWriter.Flush(); err != nil {
		return err
	}
	return cw.zw.Close()
}
