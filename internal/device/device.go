// Package device holds the technology and circuit parameters used by every
// other layer of the VRL-DRAM model: supply voltages, cell and bitline
// capacitances, parasitic coupling capacitances, wire and transistor
// resistances, and the level-1 MOSFET process parameters the analytical model
// (paper Section 2) and the mini-SPICE engine share.
//
// The default parameter set targets the 90 nm node used by the paper
// (Sicard, "Introducing 90 nm Technology in Microwind3"), with cell-array
// values in the range reported by the DRAM circuit literature the paper cites
// (Keeth, "DRAM Circuit Design"; Li et al., TCAS-I 2011).
//
// Bitline model. Physical DRAM banks are segmented: each bitline segment
// attaches SegRows cells to a local sense amplifier, and segments reach the
// bank periphery over global routing whose resistance grows with the number
// of rows in the bank; likewise the wordline spans all columns and its RC
// grows with the column count. This is how the model reproduces Table 1's
// growth of pre-sensing latency with bank geometry while keeping the
// charge-transfer ratio (and hence sensing reliability) roughly constant
// across bank sizes, as real designs do.
package device

import (
	"errors"
	"fmt"
)

// Params is the full device parameter set. All values are in SI units:
// volts, farads, ohms, seconds, amperes.
type Params struct {
	// Supply and threshold voltages.
	Vdd float64 // array supply voltage (V)
	Vss float64 // ground (V)
	Vtn float64 // NMOS threshold voltage (V)
	Vtp float64 // PMOS threshold voltage magnitude (V)
	Vg  float64 // wordline / gate boost voltage applied to pass devices (V)

	// Cell-array capacitances.
	Cs        float64 // storage cell capacitance (F)
	SegRows   int     // rows attached to one bitline segment
	CblPerRow float64 // bitline capacitance contributed per attached row (F/row)
	Cbl0      float64 // fixed bitline capacitance (sense-amp diffusion etc.) (F)
	Cbb       float64 // bitline-to-bitline coupling capacitance (F)
	Cbw       float64 // bitline-to-wordline coupling capacitance (F)

	// Resistances.
	Rbl           float64 // segment bitline distributed resistance, lumped (Ohm)
	RGlobalPerRow float64 // global (master bitline / CSL) routing resistance per bank row (Ohm/row)
	CGlobalPerRow float64 // global routing wire capacitance per bank row (F/row); the transient
	// netlists include it, while the paper's analytical model lumps global
	// routing as pure resistance - the source of the model-vs-SPICE gap that
	// grows with bank size in Table 1
	RonAccess   float64 // effective ON resistance of the cell access transistor during charge sharing (Ohm)
	AccessIdsat float64 // saturation current of the cell access transistor (A)
	RonEq       float64 // ON resistance of the equalization devices M2/M3 (Ohm)
	RonRestore  float64 // effective resistance of the restore path (SA drive + boosted access device) (Ohm)

	// Wordline distributed RC (spans all columns).
	RwlPerCol float64 // wordline resistance per column (Ohm/col)
	CwlPerCol float64 // wordline capacitance per column (F/col)

	// Level-1 MOSFET process parameters (beta = mu * Cox * W / L).
	BetaN float64 // NMOS process transconductance (A/V^2)
	BetaP float64 // PMOS process transconductance (A/V^2)
	Gme   float64 // effective transconductance of the cross-coupled pair (A/V)

	// Sense amplifier behaviour.
	Vresidue float64 // residual output-terminal difference at start of drive phase (V)

	// Timing.
	TCK          float64 // DRAM core clock period (s); latencies quantize to this
	TREFI        float64 // refresh command interval (s)
	TRetNom      float64 // nominal (worst-case JEDEC) refresh period (s)
	TFixedCycles int     // aggregate fixed delays per refresh op (wordline assert/deassert), cycles

	// Reliability.
	SenseThreshold float64 // min normalized charge for correct sensing, incl. guardband
}

// Default90nm returns the 90 nm parameter set used throughout the paper's
// evaluation. The cell-array constants are calibrated so that the analytical
// model reproduces the paper's Figure 1a restore shape (~60 % of tRFC to
// reach 95 % of charge), the Section 3.1 operating point (tau_partial = 11
// cycles, tau_full = 19 cycles), and Table 1's pre-sensing latency growth
// with bank geometry.
func Default90nm() Params {
	return Params{
		Vdd: 1.2,
		Vss: 0.0,
		Vtn: 0.35,
		Vtp: 0.35,
		Vg:  1.45, // boosted wordline (kept below Vdd+Vtn so the equalizer starts in saturation)

		Cs:        24e-15,
		SegRows:   512,
		CblPerRow: 0.082e-15,
		Cbl0:      3e-15,
		Cbb:       6e-15,
		Cbw:       2.5e-15,

		Rbl:           2.0e3,
		RGlobalPerRow: 4.0,
		CGlobalPerRow: 0.022e-15,
		RonAccess:     72.0e3,
		AccessIdsat:   1.3e-6,
		RonEq:         2.0e3,
		RonRestore:    11.4e3,

		RwlPerCol: 75.0,
		CwlPerCol: 1.95e-15,

		BetaN: 550e-6,
		BetaP: 160e-6,
		Gme:   450e-6,

		Vresidue: 0.05,

		TCK:          1.25e-9,
		TREFI:        7.8e-6,
		TRetNom:      64e-3,
		TFixedCycles: 4,

		SenseThreshold: 0.5,
	}
}

// Veq returns the equalization target voltage Vdd/2.
func (p Params) Veq() float64 { return (p.Vdd + p.Vss) / 2 }

// CblSeg returns the capacitance of one bitline segment (the load the sense
// amplifier and the equalizer see).
func (p Params) CblSeg() float64 {
	return p.Cbl0 + float64(p.SegRows)*p.CblPerRow
}

// ChargeTransferRatio returns Cs/(Cs+Cbl) for a bitline segment, the ideal
// charge-sharing voltage division ratio (paper Eq. 4).
func (p Params) ChargeTransferRatio() float64 {
	cbl := p.CblSeg()
	return p.Cs / (p.Cs + cbl)
}

// RGlobal returns the global routing resistance a refresh in a bank with the
// given number of rows traverses.
func (p Params) RGlobal(rows int) float64 { return p.RGlobalPerRow * float64(rows) }

// CGlobal returns the global routing capacitance for a bank with the given
// number of rows.
func (p Params) CGlobal(rows int) float64 { return p.CGlobalPerRow * float64(rows) }

// Rpre returns the charge-sharing path resistance for a bank with the given
// number of rows: access device + segment bitline + global routing.
func (p Params) Rpre(rows int) float64 {
	return p.RonAccess + p.Rbl + p.RGlobal(rows)
}

// WordlineDelay returns the distributed-RC delay of asserting a wordline
// spanning the given number of columns (0.38*R*C Elmore rise metric for a
// distributed line, lumped here as R_total*C_total/2).
func (p Params) WordlineDelay(cols int) float64 {
	n := float64(cols)
	return 0.5 * (p.RwlPerCol * n) * (p.CwlPerCol * n)
}

// Cpost returns the effective capacitance driven during the post-sensing
// restore phase: Cs + Cbl + 2*Cbb + Cbw (paper Eq. 12).
func (p Params) Cpost() float64 {
	return p.Cs + p.CblSeg() + 2*p.Cbb + p.Cbw
}

// Rpost returns the restore-path resistance Rbl + ron (paper Eq. 11).
func (p Params) Rpost() float64 { return p.Rbl + p.RonRestore }

// Cycles converts a duration in seconds to DRAM clock cycles, rounding up:
// a latency that does not fit in n cycles must be allocated n+1.
func (p Params) Cycles(d float64) int {
	if d <= 0 {
		return 0
	}
	n := int(d / p.TCK)
	if float64(n)*p.TCK < d-1e-18 {
		n++
	}
	return n
}

// Validate reports an error describing the first physically meaningless
// parameter it finds, or nil if the set is usable.
func (p Params) Validate() error {
	type check struct {
		ok   bool
		what string
	}
	checks := []check{
		{p.Vdd > p.Vss, "Vdd must exceed Vss"},
		{p.Vtn > 0 && p.Vtn < p.Vdd, "Vtn must lie in (0, Vdd)"},
		{p.Vtp > 0 && p.Vtp < p.Vdd, "Vtp must lie in (0, Vdd)"},
		{p.Vg > p.Vdd, "wordline boost Vg must exceed Vdd to pass a full level"},
		{p.Cs > 0, "Cs must be positive"},
		{p.SegRows > 0, "SegRows must be positive"},
		{p.CblPerRow > 0, "CblPerRow must be positive"},
		{p.Cbl0 >= 0, "Cbl0 must be non-negative"},
		{p.Cbb >= 0, "Cbb must be non-negative"},
		{p.Cbw >= 0, "Cbw must be non-negative"},
		{p.Rbl > 0, "Rbl must be positive"},
		{p.RGlobalPerRow >= 0, "RGlobalPerRow must be non-negative"},
		{p.CGlobalPerRow >= 0, "CGlobalPerRow must be non-negative"},
		{p.RonAccess > 0, "RonAccess must be positive"},
		{p.AccessIdsat > 0, "AccessIdsat must be positive"},
		{p.RonEq > 0, "RonEq must be positive"},
		{p.RonRestore > 0, "RonRestore must be positive"},
		{p.RwlPerCol >= 0, "RwlPerCol must be non-negative"},
		{p.CwlPerCol >= 0, "CwlPerCol must be non-negative"},
		{p.BetaN > 0, "BetaN must be positive"},
		{p.BetaP > 0, "BetaP must be positive"},
		{p.Gme > 0, "Gme must be positive"},
		{p.Vresidue > 0 && p.Vresidue < p.Veq(), "Vresidue must lie in (0, Veq)"},
		{p.TCK > 0, "TCK must be positive"},
		{p.TREFI > 0, "TREFI must be positive"},
		{p.TRetNom > 0, "TRetNom must be positive"},
		{p.TFixedCycles >= 0, "TFixedCycles must be non-negative"},
		{p.SenseThreshold >= 0.5 && p.SenseThreshold < 1, "SenseThreshold must lie in [0.5, 1)"},
	}
	for _, c := range checks {
		if !c.ok {
			return errors.New("device: " + c.what)
		}
	}
	return nil
}

// BankGeometry describes a DRAM bank as rows x columns of cells, the shape
// the paper's Table 1 sweeps (2048/8192/16384 x 32/128).
type BankGeometry struct {
	Rows int
	Cols int
}

// String formats the geometry the way the paper's Table 1 labels it,
// e.g. "8192x32".
func (g BankGeometry) String() string { return fmt.Sprintf("%dx%d", g.Rows, g.Cols) }

// Cells returns the total number of cells in the bank.
func (g BankGeometry) Cells() int { return g.Rows * g.Cols }

// Validate reports an error if the geometry is unusable.
func (g BankGeometry) Validate() error {
	if g.Rows <= 0 {
		return fmt.Errorf("device: bank rows must be positive, got %d", g.Rows)
	}
	if g.Cols <= 0 {
		return fmt.Errorf("device: bank cols must be positive, got %d", g.Cols)
	}
	return nil
}

// PaperBank is the 8192x32 bank the paper's evaluation (Section 4.1)
// simulates.
var PaperBank = BankGeometry{Rows: 8192, Cols: 32}

// Table1Banks lists the six bank configurations of the paper's Table 1, in
// the paper's row order.
var Table1Banks = []BankGeometry{
	{2048, 32}, {2048, 128},
	{8192, 32}, {8192, 128},
	{16384, 32}, {16384, 128},
}
