package device

import (
	"strings"
	"testing"
)

func TestDefault90nmValidates(t *testing.T) {
	if err := Default90nm().Validate(); err != nil {
		t.Fatalf("default parameter set invalid: %v", err)
	}
}

func TestValidateCatchesEachField(t *testing.T) {
	mutations := []struct {
		name string
		mut  func(*Params)
		want string
	}{
		{"vdd", func(p *Params) { p.Vdd = p.Vss }, "Vdd"},
		{"vtn", func(p *Params) { p.Vtn = 0 }, "Vtn"},
		{"vtp", func(p *Params) { p.Vtp = 2 }, "Vtp"},
		{"vg", func(p *Params) { p.Vg = p.Vdd }, "Vg"},
		{"cs", func(p *Params) { p.Cs = 0 }, "Cs"},
		{"segrows", func(p *Params) { p.SegRows = 0 }, "SegRows"},
		{"cblperrow", func(p *Params) { p.CblPerRow = -1 }, "CblPerRow"},
		{"cbl0", func(p *Params) { p.Cbl0 = -1 }, "Cbl0"},
		{"cbb", func(p *Params) { p.Cbb = -1 }, "Cbb"},
		{"cbw", func(p *Params) { p.Cbw = -1 }, "Cbw"},
		{"rbl", func(p *Params) { p.Rbl = 0 }, "Rbl"},
		{"rglobal", func(p *Params) { p.RGlobalPerRow = -1 }, "RGlobalPerRow"},
		{"cglobal", func(p *Params) { p.CGlobalPerRow = -1 }, "CGlobalPerRow"},
		{"ronaccess", func(p *Params) { p.RonAccess = 0 }, "RonAccess"},
		{"idsat", func(p *Params) { p.AccessIdsat = 0 }, "AccessIdsat"},
		{"roneq", func(p *Params) { p.RonEq = 0 }, "RonEq"},
		{"ronrestore", func(p *Params) { p.RonRestore = 0 }, "RonRestore"},
		{"rwl", func(p *Params) { p.RwlPerCol = -1 }, "RwlPerCol"},
		{"cwl", func(p *Params) { p.CwlPerCol = -1 }, "CwlPerCol"},
		{"betan", func(p *Params) { p.BetaN = 0 }, "BetaN"},
		{"betap", func(p *Params) { p.BetaP = 0 }, "BetaP"},
		{"gme", func(p *Params) { p.Gme = 0 }, "Gme"},
		{"vresidue", func(p *Params) { p.Vresidue = 0 }, "Vresidue"},
		{"tck", func(p *Params) { p.TCK = 0 }, "TCK"},
		{"trefi", func(p *Params) { p.TREFI = 0 }, "TREFI"},
		{"tretnom", func(p *Params) { p.TRetNom = 0 }, "TRetNom"},
		{"tfixed", func(p *Params) { p.TFixedCycles = -1 }, "TFixedCycles"},
		{"threshold", func(p *Params) { p.SenseThreshold = 0.4 }, "SenseThreshold"},
	}
	for _, m := range mutations {
		p := Default90nm()
		m.mut(&p)
		err := p.Validate()
		if err == nil {
			t.Errorf("%s: mutation not caught", m.name)
			continue
		}
		if !strings.Contains(err.Error(), m.want) {
			t.Errorf("%s: error %q does not mention %q", m.name, err, m.want)
		}
	}
}

func TestVeq(t *testing.T) {
	p := Default90nm()
	if got, want := p.Veq(), p.Vdd/2; got != want {
		t.Fatalf("Veq = %v, want %v", got, want)
	}
}

func TestCblSegAndRatio(t *testing.T) {
	p := Default90nm()
	cbl := p.CblSeg()
	if cbl <= p.Cbl0 {
		t.Fatalf("CblSeg %v should exceed the fixed part %v", cbl, p.Cbl0)
	}
	r := p.ChargeTransferRatio()
	if r <= 0 || r >= 1 {
		t.Fatalf("charge transfer ratio %v outside (0,1)", r)
	}
	if want := p.Cs / (p.Cs + cbl); r != want {
		t.Fatalf("ratio = %v, want %v", r, want)
	}
}

func TestGlobalRoutingScalesWithRows(t *testing.T) {
	p := Default90nm()
	if p.RGlobal(2048) >= p.RGlobal(16384) {
		t.Fatal("global resistance must grow with rows")
	}
	if p.CGlobal(2048) >= p.CGlobal(16384) {
		t.Fatal("global capacitance must grow with rows")
	}
	if p.Rpre(2048) >= p.Rpre(16384) {
		t.Fatal("Rpre must grow with rows")
	}
}

func TestWordlineDelayScalesWithCols(t *testing.T) {
	p := Default90nm()
	d32, d128 := p.WordlineDelay(32), p.WordlineDelay(128)
	if d128 <= d32 {
		t.Fatalf("wordline delay must grow with columns: %v vs %v", d32, d128)
	}
	// Distributed RC: quadratic in length.
	if ratio := d128 / d32; ratio < 15.9 || ratio > 16.1 {
		t.Fatalf("4x columns should give ~16x delay, got %vx", ratio)
	}
}

func TestCyclesRounding(t *testing.T) {
	p := Default90nm()
	cases := []struct {
		d    float64
		want int
	}{
		{0, 0},
		{-1, 0},
		{p.TCK, 1},
		{p.TCK * 0.5, 1},
		{p.TCK * 1.0001, 2},
		{p.TCK * 19, 19},
	}
	for _, c := range cases {
		if got := p.Cycles(c.d); got != c.want {
			t.Errorf("Cycles(%v) = %d, want %d", c.d, got, c.want)
		}
	}
}

func TestBankGeometry(t *testing.T) {
	g := BankGeometry{Rows: 8192, Cols: 32}
	if g.String() != "8192x32" {
		t.Fatalf("String = %q", g.String())
	}
	if g.Cells() != 8192*32 {
		t.Fatalf("Cells = %d", g.Cells())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (BankGeometry{Rows: 0, Cols: 32}).Validate(); err == nil {
		t.Fatal("zero rows must fail validation")
	}
	if err := (BankGeometry{Rows: 32, Cols: -1}).Validate(); err == nil {
		t.Fatal("negative cols must fail validation")
	}
}

func TestTable1BanksMatchPaper(t *testing.T) {
	want := []string{"2048x32", "2048x128", "8192x32", "8192x128", "16384x32", "16384x128"}
	if len(Table1Banks) != len(want) {
		t.Fatalf("got %d banks, want %d", len(Table1Banks), len(want))
	}
	for i, g := range Table1Banks {
		if g.String() != want[i] {
			t.Errorf("bank %d = %s, want %s", i, g, want[i])
		}
	}
	if PaperBank.String() != "8192x32" {
		t.Fatalf("paper bank = %s", PaperBank)
	}
}

func TestCpostIncludesCouplings(t *testing.T) {
	p := Default90nm()
	want := p.Cs + p.CblSeg() + 2*p.Cbb + p.Cbw
	if got := p.Cpost(); got != want {
		t.Fatalf("Cpost = %v, want %v", got, want)
	}
	if got, want := p.Rpost(), p.Rbl+p.RonRestore; got != want {
		t.Fatalf("Rpost = %v, want %v", got, want)
	}
}
