package area

import (
	"math"
	"testing"

	"vrldram/internal/device"
)

func TestLogicAreaMatchesPaperTable2(t *testing.T) {
	m := Default90nm()
	want := map[int]float64{2: 105, 3: 152, 4: 200}
	for nbits, area := range want {
		got, err := m.LogicArea(nbits)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-area) > 1 {
			t.Errorf("nbits=%d: %v um^2, paper %v", nbits, got, area)
		}
	}
	if _, err := m.LogicArea(0); err == nil {
		t.Fatal("nbits=0 must be rejected")
	}
}

func TestPercentagesMatchPaperTable2(t *testing.T) {
	m := Default90nm()
	ovs, err := m.Overheads(device.PaperBank, []int{2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.97, 1.40, 1.85}
	for i, o := range ovs {
		if math.Abs(o.Percent-want[i]) > 0.08 {
			t.Errorf("nbits=%d: %.2f%%, paper %.2f%%", o.NBits, o.Percent, want[i])
		}
	}
}

func TestAreaMonotoneInNBits(t *testing.T) {
	m := Default90nm()
	prev := 0.0
	for nbits := 1; nbits <= 8; nbits++ {
		a, err := m.LogicArea(nbits)
		if err != nil {
			t.Fatal(err)
		}
		if a <= prev {
			t.Fatalf("area not monotone at nbits=%d", nbits)
		}
		prev = a
	}
}

func TestBankAreaScalesWithGeometry(t *testing.T) {
	m := Default90nm()
	small, err := m.BankArea(device.BankGeometry{Rows: 2048, Cols: 32})
	if err != nil {
		t.Fatal(err)
	}
	large, err := m.BankArea(device.BankGeometry{Rows: 16384, Cols: 32})
	if err != nil {
		t.Fatal(err)
	}
	if ratio := large / small; math.Abs(ratio-8) > 1e-9 {
		t.Fatalf("8x the rows must be 8x the area, got %vx", ratio)
	}
	if _, err := m.BankArea(device.BankGeometry{}); err == nil {
		t.Fatal("bad geometry must be rejected")
	}
}

func TestOverheadsUnderTwoPercent(t *testing.T) {
	// The paper's headline area claim: within 1-2% of a bank for nbits <= 4.
	m := Default90nm()
	ovs, err := m.Overheads(device.PaperBank, []int{2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range ovs {
		if o.Percent >= 2 {
			t.Errorf("nbits=%d overhead %.2f%% >= 2%%", o.NBits, o.Percent)
		}
	}
}

func TestOverheadsPropagateErrors(t *testing.T) {
	m := Default90nm()
	if _, err := m.Overheads(device.PaperBank, []int{0}); err == nil {
		t.Fatal("bad nbits must be rejected")
	}
	if _, err := m.Overheads(device.BankGeometry{}, []int{2}); err == nil {
		t.Fatal("bad geometry must be rejected")
	}
}
