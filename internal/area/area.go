// Package area models the silicon cost of VRL-DRAM's per-bank control logic
// at the 90 nm node, reproducing the paper's Table 2: the mprsf/rcount
// counter pair, the comparator, and the refresh-latency mux, synthesized per
// bank.
//
// The model is a linear fit in the counter width nbits through the paper's
// three published points (105 / 152 / 200 um^2 at nbits = 2 / 3 / 4) plus a
// bank-area model that reproduces the published percentages for the 8192x32
// evaluation bank.
package area

import (
	"fmt"

	"vrldram/internal/device"
)

// Feature90nm is the 90 nm feature size in micrometers.
const Feature90nm = 0.09

// Model holds the fitted coefficients.
type Model struct {
	// LogicFixed and LogicPerBit fit the synthesized control logic area:
	// area(nbits) = LogicFixed + LogicPerBit*nbits (um^2).
	LogicFixed  float64
	LogicPerBit float64
	// CellAreaFactor is the effective area of one DRAM cell in F^2 units,
	// including array overheads (sense amps, decoders) amortized per cell.
	CellAreaFactor float64
	// Feature is the technology feature size (um).
	Feature float64
}

// Default90nm returns the model fitted to the paper's Table 2.
func Default90nm() Model {
	return Model{
		LogicFixed:     10.0,
		LogicPerBit:    47.5,
		CellAreaFactor: 5.1,
		Feature:        Feature90nm,
	}
}

// LogicArea returns the VRL-DRAM control logic area for an nbits-wide
// counter pair, in um^2.
func (m Model) LogicArea(nbits int) (float64, error) {
	if nbits < 1 {
		return 0, fmt.Errorf("area: nbits must be >= 1, got %d", nbits)
	}
	return m.LogicFixed + m.LogicPerBit*float64(nbits), nil
}

// BankArea returns the DRAM bank area in um^2 for a geometry.
func (m Model) BankArea(g device.BankGeometry) (float64, error) {
	if err := g.Validate(); err != nil {
		return 0, err
	}
	cell := m.CellAreaFactor * m.Feature * m.Feature
	return float64(g.Cells()) * cell, nil
}

// Overhead is one Table 2 row.
type Overhead struct {
	NBits     int
	LogicArea float64 // um^2
	Percent   float64 // % of the bank area
}

// Overheads computes Table 2 for the given geometry and counter widths.
func (m Model) Overheads(g device.BankGeometry, nbitsList []int) ([]Overhead, error) {
	bank, err := m.BankArea(g)
	if err != nil {
		return nil, err
	}
	out := make([]Overhead, 0, len(nbitsList))
	for _, n := range nbitsList {
		la, err := m.LogicArea(n)
		if err != nil {
			return nil, err
		}
		out = append(out, Overhead{NBits: n, LogicArea: la, Percent: 100 * la / bank})
	}
	return out, nil
}
