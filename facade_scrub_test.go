package vrldram_test

import (
	"testing"
)

func TestSimulateWithScrub(t *testing.T) {
	sys := newSystem(t)
	rep, err := sys.SimulateWithScrub(0.768, 64)
	if err != nil {
		t.Fatal(err)
	}
	if rep.RowsPatrolled == 0 {
		t.Fatal("patrol never ran")
	}
	if rep.Corrected == 0 && rep.Uncorrectable == 0 {
		t.Fatal("VRT against a static profile should feed the repair pipeline")
	}
	if rep.Reprofiles == 0 {
		t.Fatal("first-offense rows must be re-profiled")
	}
	if rep.HardFails != 0 {
		t.Fatalf("%d hard failures with a 64-spare budget", rep.HardFails)
	}
	if int64(len(rep.RemappedRows)) != rep.RowsRemapped {
		t.Fatalf("remap ledger inconsistent: %d rows listed, %d counted", len(rep.RemappedRows), rep.RowsRemapped)
	}
	if rep.SparesLeft != 64-int(rep.RowsRemapped) {
		t.Fatalf("spares accounting broken: %d left after %d remaps of 64", rep.SparesLeft, rep.RowsRemapped)
	}

	// The scrubbed run must beat the unmitigated VRT baseline.
	raw, err := sys.SimulateWithVRT(0.768, false)
	if err != nil {
		t.Fatal(err)
	}
	if raw.Violations == 0 {
		t.Fatal("baseline is violation-free; the comparison demonstrates nothing")
	}
	if rep.Violations >= raw.Violations {
		t.Fatalf("scrubbing did not help: %d violations vs %d unmitigated", rep.Violations, raw.Violations)
	}
}
